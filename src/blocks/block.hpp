// Shared machinery for protocol blocks.
//
// Blocks (bid agreement, input validation, common coin, data transfer,
// output agreement) are *sans-I/O state machines*: they are driven by
// start() and handle(msg), send through an Endpoint, and expose their result
// by polling. They know nothing about transports or runtimes, which makes
// them unit-testable deterministically and reusable across the virtual-time,
// threaded, and TCP runtimes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/outcome.hpp"
#include "crypto/rng.hpp"
#include "net/message.hpp"

namespace dauct::blocks {

/// The side-effect interface a block uses to talk to the world.
/// Implemented by each runtime.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// This provider's id (0..m-1).
  virtual NodeId self() const = 0;

  /// Number of providers m.
  virtual std::size_t num_providers() const = 0;

  /// Send `payload` on `topic` to provider `to`. The payload is a shared
  /// immutable buffer: implementations alias it (refcount bump), they never
  /// deep-copy it. Plain `Bytes` arguments convert implicitly (one buffer
  /// allocation, after which all hops share it).
  virtual void send(NodeId to, const net::Topic& topic, SharedBytes payload) = 0;

  /// Node-local randomness (commitment values and nonces). NOT shared
  /// randomness — that is what the common coin produces.
  virtual crypto::Rng& rng() = 0;

  /// Virtual-time timer support for the reliability layer (net/reliable.hpp):
  /// run `fn` after `delay_ns` of virtual time in this node's execution
  /// context. Returns false when the runtime has no timer facility (the
  /// default — thread/TCP runtimes); callers must degrade to timeout-free
  /// behaviour. Wrapper endpoints forward to the wrapped endpoint.
  virtual bool schedule_after(std::int64_t delay_ns, std::function<void()> fn);

  /// Round liveness timeout of the reliability layer, in virtual ns; 0 (the
  /// default) disables the round watchdogs (RoundCollector::arm is a no-op).
  virtual std::int64_t round_timeout() const { return 0; }

  /// Send to all m providers, *including self* (self-delivery keeps round
  /// bookkeeping uniform: every round collects exactly m messages). The
  /// topic, payload bytes, and digest slot are allocated once; every
  /// recipient's copy aliases them.
  void broadcast(const net::Topic& topic, const SharedBytes& payload);
};

/// Join topic components: topic_join("ba", "vote") == "ba/vote".
std::string topic_join(std::string_view prefix, std::string_view leaf);

/// True if `topic` equals `prefix` or starts with `prefix` + '/'.
bool topic_has_prefix(std::string_view topic, std::string_view prefix);

/// Collects exactly one payload per provider for one protocol round.
/// Payloads are stored as shared immutables: collecting `msg.payload` is a
/// refcount bump on the delivered buffer, not a deep copy.
class RoundCollector {
 public:
  explicit RoundCollector(std::size_t num_providers);

  /// Record a payload from `from`. Returns false on duplicate or
  /// out-of-range sender (a protocol violation the caller turns into ⊥).
  bool add(NodeId from, SharedBytes payload);

  bool complete() const { return received_ == payloads_.size(); }
  std::size_t received() const { return received_; }

  /// Payloads indexed by NodeId; valid once complete().
  const std::vector<SharedBytes>& payloads() const { return payloads_; }

  bool has(NodeId from) const { return from < seen_.size() && seen_[from]; }

  /// Arm the round liveness watchdog: while the round is incomplete, every
  /// `endpoint.round_timeout()` of virtual time, send a targeted re-request
  /// (net::kRetransmitRequestTopicName, payload = the round topic string) to
  /// every provider whose contribution is still missing — the peer's
  /// ReliableLink answers from its last-sent cache. Re-arms at most
  /// kMaxRoundRequeries times, so an unrecoverable round drains instead of
  /// spinning. A no-op when the endpoint has no timer facility or its
  /// round_timeout() is zero (reliability off: nothing changes).
  void arm(Endpoint& endpoint, const net::Topic& topic);

  /// Drop the watchdog (call when the owning block finishes for any reason
  /// other than this round completing; completion disarms automatically).
  void cancel() { watch_.reset(); }

 private:
  /// Re-request rounds per armed collector before giving up on the round.
  static constexpr std::size_t kMaxRoundRequeries = 16;

  struct Watch {
    Endpoint* endpoint;
    net::Topic topic;
    const RoundCollector* round;
    std::size_t fires_left;
  };
  static void schedule_watch(const std::shared_ptr<Watch>& watch,
                             std::int64_t timeout);

  std::vector<SharedBytes> payloads_;
  std::vector<bool> seen_;
  std::size_t received_ = 0;
  std::shared_ptr<Watch> watch_;  ///< null unless armed
};

}  // namespace dauct::blocks
