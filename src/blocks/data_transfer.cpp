#include "blocks/data_transfer.hpp"

#include <algorithm>
#include <cassert>

namespace dauct::blocks {

DataTransfer::DataTransfer(Endpoint& endpoint, std::string topic_prefix,
                           std::vector<NodeId> sources, std::vector<NodeId> receivers)
    : endpoint_(endpoint),
      topic_(topic_join(topic_prefix, "val")),
      sources_(std::move(sources)) {
  assert(std::is_sorted(sources_.begin(), sources_.end()));
  is_source_ = std::binary_search(sources_.begin(), sources_.end(), endpoint_.self());
  is_receiver_ =
      std::binary_search(receivers.begin(), receivers.end(), endpoint_.self());
  digests_.resize(sources_.size());
  seen_.assign(sources_.size(), false);
}

void DataTransfer::start(std::optional<Bytes> my_value) {
  assert(my_value.has_value() == is_source_);
  if (is_source_) {
    // Broadcast to the whole provider set: receivers consume, everyone else
    // ignores (topics are instance-scoped). Sending only to `receivers`
    // would also be correct; broadcasting keeps wire bookkeeping uniform
    // and lets sources cross-check each other when they are receivers too.
    endpoint_.broadcast(topic_, std::move(*my_value));
  }
  if (!is_receiver_) {
    // Pure sources / bystanders are done once start() ran.
    result_ = Outcome<Bytes>(Bytes{});
  }
}

bool DataTransfer::handle(const net::Message& msg) {
  if (msg.topic != topic_) return false;
  if (result_) return true;

  const auto it = std::lower_bound(sources_.begin(), sources_.end(), msg.from);
  if (it == sources_.end() || *it != msg.from) {
    // Value from a non-source: a protocol violation.
    result_ = Outcome<Bytes>(
        Bottom{AbortReason::kProtocolViolation,
               "data-transfer value from non-source " + std::to_string(msg.from)});
    return true;
  }
  const auto rank = static_cast<std::size_t>(it - sources_.begin());
  if (seen_[rank]) {
    result_ = Outcome<Bytes>(
        Bottom{AbortReason::kProtocolViolation, "duplicate data-transfer value"});
    return true;
  }
  seen_[rank] = true;
  digests_[rank] = msg.payload_digest();
  if (!have_value_) {
    value_ = msg.payload;
    have_value_ = true;
  }
  ++num_received_;
  maybe_decide();
  return true;
}

void DataTransfer::maybe_decide() {
  if (result_ || num_received_ < sources_.size()) return;
  for (std::size_t r = 1; r < digests_.size(); ++r) {
    if (digests_[r] != digests_[0]) {
      result_ = Outcome<Bytes>(
          Bottom{AbortReason::kTransferMismatch,
                 "sources " + std::to_string(sources_[0]) + " and " +
                     std::to_string(sources_[r]) + " disagree"});
      return;
    }
  }
  // All digests agree, so every copy is (collision-resistance) identical to
  // the first one received.
  result_ = Outcome<Bytes>(value_.to_bytes());
}

}  // namespace dauct::blocks
