#include "blocks/input_validation.hpp"

namespace dauct::blocks {

InputValidation::InputValidation(Endpoint& endpoint, std::string topic_prefix)
    : endpoint_(endpoint),
      topic_(topic_join(topic_prefix, "digest")),
      digests_(endpoint.num_providers()) {}

void InputValidation::start(Bytes input) {
  input_ = std::move(input);
  my_digest_ = crypto::sha256(BytesView(input_));
  started_ = true;
  endpoint_.broadcast(topic_, crypto::digest_bytes(my_digest_));
  digests_.arm(endpoint_, topic_);
  maybe_decide();
}

bool InputValidation::handle(const net::Message& msg) {
  if (msg.topic != topic_) return false;
  if (result_) return true;
  if (msg.payload.size() != 32) {
    result_ = Outcome<Bytes>(Bottom{AbortReason::kProtocolViolation, "malformed digest"});
    digests_.cancel();
    return true;
  }
  if (!digests_.add(msg.from, msg.payload)) {
    result_ = Outcome<Bytes>(Bottom{AbortReason::kProtocolViolation, "duplicate digest"});
    digests_.cancel();
    return true;
  }
  maybe_decide();
  return true;
}

void InputValidation::maybe_decide() {
  if (result_ || !started_ || !digests_.complete()) return;
  const Bytes mine = crypto::digest_bytes(my_digest_);
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    if (digests_.payloads()[j] != mine) {
      result_ = Outcome<Bytes>(Bottom{AbortReason::kInputMismatch,
                                      "input digest differs at provider " + std::to_string(j)});
      digests_.cancel();
      return;
    }
  }
  result_ = Outcome<Bytes>(input_);
}

}  // namespace dauct::blocks
