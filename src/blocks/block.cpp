#include "blocks/block.hpp"

namespace dauct::blocks {

bool Endpoint::schedule_after(std::int64_t delay_ns, std::function<void()> fn) {
  (void)delay_ns;
  (void)fn;
  return false;  // no timer facility: round watchdogs degrade to no-ops
}

void Endpoint::broadcast(const net::Topic& topic, const SharedBytes& payload) {
  const std::size_t m = num_providers();
  for (NodeId j = 0; j < m; ++j) {
    send(j, topic, payload);  // per-recipient cost: one refcount bump
  }
}

std::string topic_join(std::string_view prefix, std::string_view leaf) {
  std::string out;
  out.reserve(prefix.size() + 1 + leaf.size());
  out.append(prefix);
  out.push_back('/');
  out.append(leaf);
  return out;
}

bool topic_has_prefix(std::string_view topic, std::string_view prefix) {
  if (topic.size() < prefix.size()) return false;
  if (topic.substr(0, prefix.size()) != prefix) return false;
  return topic.size() == prefix.size() || topic[prefix.size()] == '/';
}

RoundCollector::RoundCollector(std::size_t num_providers)
    : payloads_(num_providers), seen_(num_providers, false) {}

bool RoundCollector::add(NodeId from, SharedBytes payload) {
  if (from >= seen_.size() || seen_[from]) return false;
  seen_[from] = true;
  payloads_[from] = std::move(payload);
  ++received_;
  if (complete()) watch_.reset();  // pending watchdog timers become no-ops
  return true;
}

void RoundCollector::arm(Endpoint& endpoint, const net::Topic& topic) {
  const std::int64_t timeout = endpoint.round_timeout();
  if (timeout <= 0 || complete()) return;
  watch_ = std::make_shared<Watch>(Watch{&endpoint, topic, this, kMaxRoundRequeries});
  schedule_watch(watch_, timeout);
}

void RoundCollector::schedule_watch(const std::shared_ptr<Watch>& watch,
                                    std::int64_t timeout) {
  // The timer holds the watch weakly: when the round completes or the block
  // cancels, the shared state dies and due timers evaporate.
  watch->endpoint->schedule_after(timeout, [weak = std::weak_ptr<Watch>(watch),
                                            timeout] {
    const auto w = weak.lock();
    if (!w || w->fires_left == 0) return;
    --w->fires_left;
    const RoundCollector& round = *w->round;
    const SharedBytes request{Bytes(w->topic.str().begin(), w->topic.str().end())};
    const net::Topic rreq(net::kRetransmitRequestTopicName);
    for (NodeId j = 0; j < round.payloads_.size(); ++j) {
      if (!round.seen_[j]) w->endpoint->send(j, rreq, request);
    }
    schedule_watch(w, timeout);
  });
}

}  // namespace dauct::blocks
