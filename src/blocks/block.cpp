#include "blocks/block.hpp"

namespace dauct::blocks {

void Endpoint::broadcast(const net::Topic& topic, const SharedBytes& payload) {
  const std::size_t m = num_providers();
  for (NodeId j = 0; j < m; ++j) {
    send(j, topic, payload);  // per-recipient cost: one refcount bump
  }
}

std::string topic_join(std::string_view prefix, std::string_view leaf) {
  std::string out;
  out.reserve(prefix.size() + 1 + leaf.size());
  out.append(prefix);
  out.push_back('/');
  out.append(leaf);
  return out;
}

bool topic_has_prefix(std::string_view topic, std::string_view prefix) {
  if (topic.size() < prefix.size()) return false;
  if (topic.substr(0, prefix.size()) != prefix) return false;
  return topic.size() == prefix.size() || topic[prefix.size()] == '/';
}

RoundCollector::RoundCollector(std::size_t num_providers)
    : payloads_(num_providers), seen_(num_providers, false) {}

bool RoundCollector::add(NodeId from, SharedBytes payload) {
  if (from >= seen_.size() || seen_[from]) return false;
  seen_[from] = true;
  payloads_[from] = std::move(payload);
  ++received_;
  return true;
}

}  // namespace dauct::blocks
