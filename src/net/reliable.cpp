#include "net/reliable.hpp"

#include <algorithm>
#include <cstring>

#include "serde/codec.hpp"

namespace dauct::net {

namespace {

std::uint64_t cache_key(NodeId to, std::uint32_t topic) {
  return (static_cast<std::uint64_t>(to) << 32) | topic;
}

/// First byte of the link's wire header when piggybacked acks are on:
///   0xAB ‖ varint count ‖ count × (str topic ‖ 32-byte digest) ‖ payload.
/// Present on *every* provider-bound data frame (count may be 0), so the
/// receiver never has to sniff — both ends share one ReliabilityConfig.
constexpr std::uint8_t kLinkHeaderMagic = 0xAB;

/// Defensive bound on carried ack entries (frames arrive from peers).
constexpr std::uint64_t kMaxCarriedAcks = 4096;

}  // namespace

std::size_t ReliableLink::MsgKeyHash::operator()(const MsgKey& k) const {
  // The sha256 prefix is already uniform; fold in the peer and topic so two
  // peers' copies of one broadcast payload land in different buckets.
  std::uint64_t h;
  std::memcpy(&h, k.digest.data(), sizeof h);
  h ^= static_cast<std::uint64_t>(k.node) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(k.topic) << 32;
  return static_cast<std::size_t>(h);
}

ReliableLink::ReliableLink(blocks::Endpoint& base, ReliabilityConfig config)
    : base_(base),
      config_(config),
      m_(base.num_providers()),
      ack_topic_(kAckTopicName),
      rreq_topic_(kRetransmitRequestTopicName) {}

void ReliableLink::send(NodeId to, const net::Topic& topic, SharedBytes payload) {
  if (topic == rreq_topic_) {
    // Round-watchdog re-requests are themselves fire-and-forget: the
    // watchdog re-arms, so a lost re-request costs one timeout, not a stall.
    ++stats_.rerequests_sent;
    base_.send(to, topic, std::move(payload));
    return;
  }
  if (to >= m_) {  // outside the provider reliability domain
    base_.send(to, topic, std::move(payload));
    return;
  }
  // Every call reaching this point is an application-level logical message
  // (retransmits and re-request answers re-enter at wire_send below): record
  // its key and flag reuse, the one pattern receiver dedup would misread.
  if (!bounded_insert(sent_keys_, sent_keys_order_,
                      MsgKey{to, topic.id(), payload_digest(payload)})) {
    ++stats_.sender_key_reuses;
  }
  sent_cache_[cache_key(to, topic.id())] = CachedSend{topic, payload};
  if (timers_available_) {
    const MsgKey key{to, topic.id(), payload_digest(payload)};
    const auto [it, inserted] = unacked_.emplace(key, Pending{to, topic, payload, 0});
    if (inserted) {
      if (schedule_retransmit(key, 0)) {
        ++stats_.tracked;
      } else {
        // The wrapped endpoint has no timer facility (thread/TCP runtimes):
        // retransmission is impossible, so don't accumulate pending entries
        // that nothing will ever retire. Acks-out and receiver-side dedup
        // keep working; delivery guarantees degrade to the transport's own.
        timers_available_ = false;
        unacked_.erase(it);
      }
    }
  }
  wire_send(to, topic, payload);
}

void ReliableLink::wire_send(NodeId to, const net::Topic& topic,
                             const SharedBytes& payload) {
  if (!config_.piggyback_acks) {
    base_.send(to, topic, payload);
    return;
  }
  // Wrapping is config-driven only — never runtime state like the timer
  // facility, which the receiving link cannot observe on the sender. On
  // timerless endpoints acks go out standalone (queue_or_send_ack), so the
  // header just carries an empty vector.
  // The link header is the frame's last wrapper before the wire: signatures
  // (and everything else above) cover the unwrapped payload, and the
  // receiving link strips the header before the validator looks at it.
  std::vector<PendingAck> acks;
  if (const auto it = pending_acks_.find(to); it != pending_acks_.end()) {
    acks = std::move(it->second);
    pending_acks_.erase(it);
  }
  serde::Writer w(1 + serde::varint_len(acks.size()) + payload.size() +
                  acks.size() * 48);
  w.u8(kLinkHeaderMagic);
  w.varint(acks.size());
  for (const auto& a : acks) {
    w.str(a.topic);
    w.raw(BytesView(a.digest.data(), a.digest.size()));
  }
  stats_.acks_piggybacked += acks.size();
  w.raw(payload.view());
  base_.send(to, topic, SharedBytes(w.take()));
}

bool ReliableLink::schedule_retransmit(const MsgKey& key, std::size_t attempt) {
  // Exponential backoff in virtual time: delay · 2^attempt (capped well
  // below overflow; max_retries bounds the chain anyway).
  const sim::SimTime delay =
      config_.retransmit_delay << std::min<std::size_t>(attempt, 16);
  return base_.schedule_after(delay, [this, weak = std::weak_ptr<int>(alive_), key] {
    if (weak.expired()) return;
    const auto it = unacked_.find(key);
    if (it == unacked_.end()) return;  // acked meanwhile
    Pending& p = it->second;
    if (p.attempt >= config_.max_retries) {
      ++stats_.give_ups;
      const NodeId to = p.to;
      const net::Topic topic = p.topic;
      const std::size_t attempts = p.attempt + 1;  // original + retransmits
      unacked_.erase(it);
      if (on_give_up_) on_give_up_(to, topic, attempts);
      return;
    }
    ++p.attempt;
    ++stats_.retransmits;
    wire_send(p.to, p.topic, p.payload);
    schedule_retransmit(key, p.attempt);
  });
}

void ReliableLink::send_ack_frame(NodeId to, const std::string& topic,
                                  const crypto::Digest& digest) {
  // Standalone ack frame (docs/RELIABILITY.md): topic string ++ raw 32-byte
  // payload digest. The fixed-size tail makes the split unambiguous without
  // framing.
  Bytes ack;
  ack.reserve(topic.size() + digest.size());
  ack.insert(ack.end(), topic.begin(), topic.end());
  ack.insert(ack.end(), digest.begin(), digest.end());
  ++stats_.acks_sent;
  base_.send(to, ack_topic_, SharedBytes(std::move(ack)));
}

void ReliableLink::queue_or_send_ack(const net::Message& msg) {
  const std::string& topic = msg.topic.str();
  const crypto::Digest digest = payload_digest(msg.payload);
  if (!config_.piggyback_acks || !timers_available_) {
    send_ack_frame(msg.from, topic, digest);
    return;
  }
  // Queue the ack and arm the end-of-instant flush: any data frame to this
  // peer sent from the current handler carries it for free (wire_send), and
  // the flush timer — due at the handler's end, exactly when an immediate
  // ack would have departed — sends the leftovers standalone. Same ack
  // timing either way; fewer messages.
  pending_acks_[msg.from].push_back(PendingAck{topic, digest});
  if (!ack_flush_scheduled_) {
    ack_flush_scheduled_ = true;
    if (!base_.schedule_after(0, [this, weak = std::weak_ptr<int>(alive_)] {
          if (weak.expired()) return;
          flush_pending_acks();
        })) {
      // No timer facility after all: degrade to immediate standalone acks,
      // starting with what was just queued.
      timers_available_ = false;
      ack_flush_scheduled_ = false;
      flush_pending_acks();
    }
  }
}

void ReliableLink::flush_pending_acks() {
  ack_flush_scheduled_ = false;
  // Drain into a local list first (send_ack_frame goes through base_.send,
  // and nothing below this layer may observe a half-drained queue), then
  // send in peer order — not unordered_map order, which is a hash-table
  // artifact the deterministic event stream must not depend on.
  std::unordered_map<NodeId, std::vector<PendingAck>> pending;
  pending.swap(pending_acks_);
  std::vector<NodeId> peers;
  peers.reserve(pending.size());
  for (const auto& [to, acks] : pending) peers.push_back(to);
  std::sort(peers.begin(), peers.end());
  for (NodeId to : peers) {
    for (const auto& a : pending[to]) send_ack_frame(to, a.topic, a.digest);
  }
}

bool ReliableLink::on_deliver(net::Message& msg) {
  // Control frames name topics as strings chosen by the peer: resolve them
  // with a find-only registry query (Topic::lookup) — a name no local block
  // ever interned cannot match any pending entry or cached payload, so it
  // is dropped instead of interned (the append-only registry must stay
  // bounded by protocol structure, not by hostile traffic).
  if (msg.topic == ack_topic_) {
    const BytesView v = msg.payload.view();
    if (v.size() < 32) return false;  // malformed ack: drop
    const auto topic = net::Topic::lookup(std::string_view(
        reinterpret_cast<const char*>(v.data()), v.size() - 32));
    if (!topic) return false;  // ack for a topic nobody here ever sent
    MsgKey key{msg.from, topic->id(), {}};
    std::memcpy(key.digest.data(), v.data() + (v.size() - 32), 32);
    unacked_.erase(key);  // redundant re-acks miss and are fine
    ++stats_.acks_received;
    return false;
  }
  if (msg.topic == rreq_topic_) {
    const BytesView v = msg.payload.view();
    if (v.empty()) return false;  // malformed re-request: drop
    if (v.size() == 1 && v[0] == '*') {
      // Rejoin sweep (request_rejoin): the peer lost its memory and asks for
      // everything this link ever sent it. Answer the whole sent cache for
      // that peer, in topic-id order — never hash-table order, which the
      // deterministic event stream must not depend on. The recovered peer's
      // restored dedup set swallows what its WAL already had.
      std::vector<const CachedSend*> entries;
      for (const auto& [key, cached] : sent_cache_) {
        if (static_cast<NodeId>(key >> 32) == msg.from) entries.push_back(&cached);
      }
      std::sort(entries.begin(), entries.end(),
                [](const CachedSend* a, const CachedSend* b) {
                  return a->topic.id() < b->topic.id();
                });
      for (const CachedSend* cached : entries) {
        ++stats_.rejoin_answers;
        wire_send(msg.from, cached->topic, cached->payload);
      }
      return false;
    }
    const auto topic = net::Topic::lookup(
        std::string_view(reinterpret_cast<const char*>(v.data()), v.size()));
    if (!topic) return false;  // unknown round topic: nothing cached anyway
    // Resend untracked: the original's ack/retransmit entry (if still
    // pending) keeps running, and the receiver dedups either way.
    if (const auto it = sent_cache_.find(cache_key(msg.from, topic->id()));
        it != sent_cache_.end()) {
      ++stats_.rerequests_answered;
      wire_send(msg.from, *topic, it->second.payload);
    }
    return false;
  }
  if (msg.from >= m_) return true;  // client traffic: no acks, no dedup
  if (config_.piggyback_acks) {
    // Provider data frames arrive wrapped in the link header (wire_send):
    // process the carried ack vector, then strip the header in place — an
    // aliasing suffix view, no byte copy — so everything above this layer
    // (validator, engine, dedup key) sees the logical payload.
    serde::Reader r(msg.payload.view());
    if (r.u8() != kLinkHeaderMagic) return false;  // malformed frame: drop
    const std::uint64_t count = r.varint();
    if (!r.ok() || count > kMaxCarriedAcks) return false;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string_view topic_name = r.str_view();
      const BytesView digest = r.raw_view(32);
      if (!r.ok()) return false;
      const auto topic = net::Topic::lookup(topic_name);
      if (!topic) continue;  // ack for a topic nobody here ever sent
      MsgKey key{msg.from, topic->id(), {}};
      std::memcpy(key.digest.data(), digest.data(), 32);
      unacked_.erase(key);  // redundant re-acks miss and are fine
      ++stats_.acks_received;
    }
    msg.set_payload(
        msg.payload.suffix(msg.payload.size() - r.remaining()));
  }
  queue_or_send_ack(msg);  // (re-)ack every copy — a lost ack is recovered by the re-ack
  if (!bounded_insert(seen_, seen_order_,
                      MsgKey{msg.from, msg.topic.id(), payload_digest(msg.payload)})) {
    ++stats_.duplicates_suppressed;
    return false;
  }
  return true;
}

void ReliableLink::restore_delivered(const net::Message& msg) {
  // Same key the live path inserts after header-stripping: the WAL logs the
  // engine-facing payload, so the digests line up. Client traffic is outside
  // the dedup domain live, and stays outside here.
  if (msg.from >= m_) return;
  if (bounded_insert(seen_, seen_order_,
                     MsgKey{msg.from, msg.topic.id(), payload_digest(msg.payload)})) {
    ++stats_.restored_delivered;
  }
}

void ReliableLink::request_rejoin() {
  // Not routed through send(): the sweep is its own fire-and-forget protocol
  // step with its own counter, and must not perturb rerequests_sent (pinned
  // by scenario fingerprints on non-recovery runs).
  const SharedBytes star{Bytes{std::uint8_t{'*'}}};
  for (NodeId p = 0; p < static_cast<NodeId>(m_); ++p) {
    if (p == base_.self()) continue;
    ++stats_.rejoin_requests_sent;
    base_.send(p, rreq_topic_, star);
  }
}

bool ReliableLink::bounded_insert(std::unordered_set<MsgKey, MsgKeyHash>& set,
                                  std::deque<MsgKey>& order, const MsgKey& key) {
  if (!set.insert(key).second) return false;
  order.push_back(key);
  const std::size_t window = std::max<std::size_t>(config_.dedup_window, 1);
  while (order.size() > window) {
    set.erase(order.front());
    order.pop_front();
    ++stats_.dedup_evictions;
  }
  return true;
}

}  // namespace dauct::net
