// TCP transport: length-prefixed frames over real sockets.
//
// Each node runs a TcpNode: an accept loop plus one reader thread per inbound
// connection, delivering decoded frames into a Mailbox; outbound connections
// are opened lazily per peer and guarded by a mutex. The TCP example runs the
// full distributed auctioneer over loopback sockets — the "crypto/networking
// plumbing" of a real deployment, end to end.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "blocks/block.hpp"
#include "net/mem_transport.hpp"
#include "net/message.hpp"

namespace dauct::net {

/// Address book: node id → (host, port). Loopback by default.
struct TcpPeers {
  std::uint16_t base_port = 0;  ///< node j listens on base_port + j
  std::string host = "127.0.0.1";

  std::uint16_t port_of(NodeId node) const {
    return static_cast<std::uint16_t>(base_port + node);
  }
};

/// One protocol node on a real TCP socket.
class TcpNode {
 public:
  /// Binds and starts the accept loop. Throws std::runtime_error on failure
  /// (e.g. port in use).
  TcpNode(NodeId self, TcpPeers peers);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// Send a frame to `msg.to` (connects lazily). A failed write on a cached
  /// connection is retried once over a fresh connection — a restarted peer
  /// leaves the old socket half-dead, and the kernel only reports that on
  /// the write after the RST. Returns false if no connection could be
  /// established or both writes failed.
  bool send(Message msg);

  /// Drop the cached outbound connection to `peer` (the next send
  /// reconnects). Called when the peer is known to have restarted — writes
  /// into the pre-restart socket would be silently swallowed until the RST
  /// arrives, and the first frames lost.
  void reset_peer(NodeId peer);

  /// Inbound messages land here.
  Mailbox& inbox() { return inbox_; }

  NodeId self() const { return self_; }

  /// Stop accepting/reading and close all sockets (also closes the inbox).
  void shutdown();

 private:
  void accept_loop();
  void reader_loop(int fd);
  int connect_to(NodeId peer);

  NodeId self_;
  TcpPeers peers_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  Mailbox inbox_;
  std::thread acceptor_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<int> accepted_fds_;  // guarded by readers_mutex_

  std::mutex out_mutex_;
  std::map<NodeId, int> out_fds_;
};

/// Endpoint over a TcpNode.
class TcpEndpoint final : public blocks::Endpoint {
 public:
  TcpEndpoint(TcpNode& node, std::size_t num_providers, std::uint64_t rng_seed)
      : node_(node), num_providers_(num_providers), rng_(rng_seed) {}

  NodeId self() const override { return node_.self(); }
  std::size_t num_providers() const override { return num_providers_; }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    node_.send(Message{node_.self(), to, topic, std::move(payload)});
  }

  crypto::Rng& rng() override { return rng_; }

 private:
  TcpNode& node_;
  std::size_t num_providers_;
  crypto::Rng rng_;
};

/// Pick a base port that is likely free (ephemeral range, pid-salted).
std::uint16_t pick_base_port(std::uint16_t span);

}  // namespace dauct::net
