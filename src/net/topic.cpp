#include "net/topic.hpp"

#include <deque>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

namespace dauct::net {

namespace {

/// Append-only topic registry. `strings` is a deque so interned entries keep
/// stable addresses; the index keys are views into those entries. All access
/// goes through the mutex — readers never touch the registry because Topic
/// carries the string pointer itself.
struct Registry {
  std::mutex mutex;
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, std::uint32_t> index;

  Registry() { intern(""); }  // id 0 == the empty topic

  std::pair<std::uint32_t, const std::string*> intern(std::string_view s) {
    std::lock_guard lock(mutex);
    if (auto it = index.find(s); it != index.end()) {
      return {it->second, &strings[it->second]};
    }
    const auto id = static_cast<std::uint32_t>(strings.size());
    strings.emplace_back(s);
    index.emplace(std::string_view(strings.back()), id);
    return {id, &strings.back()};
  }

  std::pair<std::uint32_t, const std::string*> find(std::string_view s) {
    std::lock_guard lock(mutex);
    if (auto it = index.find(s); it != index.end()) {
      return {it->second, &strings[it->second]};
    }
    return {0, nullptr};
  }

  std::size_t size() {
    std::lock_guard lock(mutex);
    return strings.size();
  }
};

Registry& registry() {
  static Registry r;  // immortal (function-local static): Topics never dangle
  return r;
}

const std::string& empty_string() {
  static const std::string s;
  return s;
}

}  // namespace

Topic::Topic() : id_(0), str_(&empty_string()) {}

Topic::Topic(std::string_view s) {
  const auto [id, str] = registry().intern(s);
  id_ = id;
  str_ = str;
}

Topic::Topic(const std::string& s) : Topic(std::string_view(s)) {}
Topic::Topic(const char* s) : Topic(std::string_view(s)) {}

std::optional<Topic> Topic::lookup(std::string_view s) {
  const auto [id, str] = registry().find(s);
  if (!str) return std::nullopt;
  Topic t;
  t.id_ = id;
  t.str_ = str;
  return t;
}

std::ostream& operator<<(std::ostream& os, const Topic& t) {
  return os << t.str();
}

std::size_t topic_registry_size() { return registry().size(); }

ScopedTopicRegistry::ScopedTopicRegistry(std::string prefix)
    : prefix_(std::move(prefix)) {}

Topic ScopedTopicRegistry::scope(const Topic& base) {
  if (prefix_.empty()) return base;
  if (const auto it = memo_.find(base.id()); it != memo_.end()) {
    return it->second;
  }
  const Topic scoped(scope_name(base.str()));
  memo_.emplace(base.id(), scoped);
  return scoped;
}

std::string ScopedTopicRegistry::scope_name(std::string_view base) const {
  std::string out;
  out.reserve(prefix_.size() + base.size());
  out.append(prefix_);
  out.append(base);
  return out;
}

}  // namespace dauct::net
