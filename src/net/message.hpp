// Protocol message: the unit of communication between providers.
//
// `topic` is a routing key identifying the protocol block instance the
// payload belongs to (e.g. "ba/vote", "alloc/dt/2/val"). Topics provide
// domain separation at the routing level; payloads are opaque bytes encoded
// with serde.
//
// Fan-out is zero-copy: `topic` is an interned id (net/topic.hpp) and
// `payload` a refcounted immutable buffer (SharedBytes), so copying a Message
// — per recipient of a broadcast, into the scheduler, into a mailbox — bumps
// a refcount instead of duplicating the bytes. The payload digest lives in a
// slot shared by every alias of the buffer: the m recipients of one broadcast
// hash the payload once between them.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"
#include "net/topic.hpp"

namespace dauct::net {

/// Control topics of the reliability layer (net/reliable.hpp; wire contract
/// in docs/RELIABILITY.md). Declared at the message layer because both the
/// link (which consumes them) and the blocks' round watchdogs (which send
/// re-requests) need the names.
inline constexpr std::string_view kAckTopicName = "rl/ack";
inline constexpr std::string_view kRetransmitRequestTopicName = "rl/rreq";

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Topic topic{};
  SharedBytes payload{};

  /// Approximate size on the wire (header + topic + payload); used by the
  /// latency model to charge serialization delay.
  std::size_t wire_size() const { return 16 + topic.size() + payload.size(); }

  /// SHA-256 of `payload`, computed lazily into the buffer's shared digest
  /// slot: at most one hash per underlying buffer, across all aliasing
  /// messages (every recipient of a broadcast, every collector slot) and
  /// across threads. Payloads are immutable, so the cache can never go stale.
  const crypto::Digest& payload_digest() const;

  /// Replace the payload (new buffer, fresh digest slot).
  void set_payload(SharedBytes p) { payload = std::move(p); }
};

/// SHA-256 of a payload buffer via its shared digest slot — the same slot
/// Message::payload_digest() fills, for callers that hold a SharedBytes
/// without a Message (the reliability layer's send path). All users of the
/// slot must share one digest function; this is it.
const crypto::Digest& payload_digest(const SharedBytes& payload);

/// Length-prefixed frame encoding for stream transports (TCP). Single-buffer:
/// the exact body size is computed up front, so the length prefix and body
/// are written straight into one exactly-reserved buffer (no body→frame
/// copy).
Bytes encode_frame(const Message& msg);

/// Decode one frame. Returns the message and the number of bytes consumed,
/// std::nullopt if `data` does not yet contain a complete valid frame.
/// Frames larger than kMaxFrameBytes are rejected (returns a message with
/// to == kNoNode and consumed > 0 would be ambiguous — instead decode_frame
/// throws std::length_error for oversized frames; stream owners drop the
/// connection).
struct DecodedFrame {
  Message message;
  std::size_t consumed = 0;
};
std::optional<DecodedFrame> decode_frame(BytesView data);

/// Upper bound on a frame (defensive: peers are untrusted).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

}  // namespace dauct::net
