// Protocol message: the unit of communication between providers.
//
// `topic` is a routing key identifying the protocol block instance the
// payload belongs to (e.g. "ba/vote", "alloc/dt/2/val"). Topics provide
// domain separation at the routing level; payloads are opaque bytes encoded
// with serde.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace dauct::net {

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string topic;
  Bytes payload;

  /// Approximate size on the wire (header + topic + payload); used by the
  /// latency model to charge serialization delay.
  std::size_t wire_size() const { return 16 + topic.size() + payload.size(); }
};

/// Length-prefixed frame encoding for stream transports (TCP).
Bytes encode_frame(const Message& msg);

/// Decode one frame. Returns the message and the number of bytes consumed,
/// std::nullopt if `data` does not yet contain a complete valid frame.
/// Frames larger than kMaxFrameBytes are rejected (returns a message with
/// to == kNoNode and consumed > 0 would be ambiguous — instead decode_frame
/// throws std::length_error for oversized frames; stream owners drop the
/// connection).
struct DecodedFrame {
  Message message;
  std::size_t consumed = 0;
};
std::optional<DecodedFrame> decode_frame(BytesView data);

/// Upper bound on a frame (defensive: peers are untrusted).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

}  // namespace dauct::net
