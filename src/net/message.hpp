// Protocol message: the unit of communication between providers.
//
// `topic` is a routing key identifying the protocol block instance the
// payload belongs to (e.g. "ba/vote", "alloc/dt/2/val"). Topics provide
// domain separation at the routing level; payloads are opaque bytes encoded
// with serde.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"

namespace dauct::net {

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string topic;
  Bytes payload;

  /// Approximate size on the wire (header + topic + payload); used by the
  /// latency model to charge serialization delay.
  std::size_t wire_size() const { return 16 + topic.size() + payload.size(); }

  /// SHA-256 of `payload`, computed lazily and cached — cross-validating
  /// blocks (data transfer, batched-consensus echoes) hash the same payload
  /// bytes at most once per message. The cache deliberately does NOT survive
  /// copies or moves (copied/moved-from Messages restart cold), so the
  /// common copy-then-tweak-payload pattern cannot observe a stale digest.
  /// Contract on a single object: don't mutate `payload` directly after the
  /// first call — use set_payload(), which resets the cache.
  const crypto::Digest& payload_digest() const {
    if (!digest_cache_.cached) {
      digest_cache_.digest = crypto::sha256(BytesView(payload));
      digest_cache_.cached = true;
    }
    return digest_cache_.digest;
  }

  /// Replace the payload, invalidating any cached digest.
  void set_payload(Bytes p) {
    payload = std::move(p);
    digest_cache_.cached = false;
  }

  /// Digest cache slot: every copy/move starts cold (and a moved-from source
  /// is reset, its payload having been stolen). Public member so Message
  /// stays an aggregate — brace-init with the four routing/payload fields
  /// still works; treat as internal.
  struct PayloadDigestCache {
    PayloadDigestCache() = default;
    PayloadDigestCache(const PayloadDigestCache&) {}
    PayloadDigestCache(PayloadDigestCache&& other) noexcept { other.cached = false; }
    PayloadDigestCache& operator=(const PayloadDigestCache&) {
      cached = false;
      return *this;
    }
    PayloadDigestCache& operator=(PayloadDigestCache&& other) noexcept {
      cached = false;
      other.cached = false;
      return *this;
    }

    mutable crypto::Digest digest{};
    mutable bool cached = false;
  };
  PayloadDigestCache digest_cache_{};
};

/// Length-prefixed frame encoding for stream transports (TCP). Single-buffer:
/// the exact body size is computed up front, so the length prefix and body
/// are written straight into one exactly-reserved buffer (no body→frame
/// copy).
Bytes encode_frame(const Message& msg);

/// Decode one frame. Returns the message and the number of bytes consumed,
/// std::nullopt if `data` does not yet contain a complete valid frame.
/// Frames larger than kMaxFrameBytes are rejected (returns a message with
/// to == kNoNode and consumed > 0 would be ambiguous — instead decode_frame
/// throws std::length_error for oversized frames; stream owners drop the
/// connection).
struct DecodedFrame {
  Message message;
  std::size_t consumed = 0;
};
std::optional<DecodedFrame> decode_frame(BytesView data);

/// Upper bound on a frame (defensive: peers are untrusted).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

}  // namespace dauct::net
