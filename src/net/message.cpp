#include "net/message.hpp"

#include <stdexcept>

#include "serde/codec.hpp"

namespace dauct::net {

Bytes encode_frame(const Message& msg) {
  serde::Writer body;
  body.u32(msg.from);
  body.u32(msg.to);
  body.str(msg.topic);
  body.bytes(msg.payload);

  serde::Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.buffer().size()));
  frame.raw(body.buffer());
  return frame.take();
}

std::optional<DecodedFrame> decode_frame(BytesView data) {
  if (data.size() < 4) return std::nullopt;
  serde::Reader header(data.subspan(0, 4));
  const std::uint32_t body_len = header.u32();
  if (body_len > kMaxFrameBytes) {
    throw std::length_error("decode_frame: oversized frame");
  }
  if (data.size() < 4u + body_len) return std::nullopt;

  serde::Reader r(data.subspan(4, body_len));
  DecodedFrame out;
  out.message.from = r.u32();
  out.message.to = r.u32();
  out.message.topic = r.str();
  out.message.payload = r.bytes();
  if (!r.at_end()) {
    throw std::length_error("decode_frame: malformed frame body");
  }
  out.consumed = 4u + body_len;
  return out;
}

}  // namespace dauct::net
