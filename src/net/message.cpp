#include "net/message.hpp"

#include <stdexcept>

#include "serde/codec.hpp"

namespace dauct::net {

Bytes encode_frame(const Message& msg) {
  // Exact frame size, known up front: one reservation, no body→frame copy.
  const std::size_t body_len = 4 + 4 + serde::varint_len(msg.topic.size()) +
                               msg.topic.size() +
                               serde::varint_len(msg.payload.size()) +
                               msg.payload.size();
  serde::Writer w(4 + body_len);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.u32(msg.from);
  w.u32(msg.to);
  w.str(msg.topic);
  w.bytes(msg.payload);
  return w.take();
}

std::optional<DecodedFrame> decode_frame(BytesView data) {
  if (data.size() < 4) return std::nullopt;
  serde::Reader header(data.subspan(0, 4));
  const std::uint32_t body_len = header.u32();
  if (body_len > kMaxFrameBytes) {
    throw std::length_error("decode_frame: oversized frame");
  }
  if (data.size() < 4u + body_len) return std::nullopt;

  serde::Reader r(data.subspan(4, body_len));
  DecodedFrame out;
  out.message.from = r.u32();
  out.message.to = r.u32();
  // View-based reads: one copy into the owning Message fields, no
  // intermediate Bytes temporaries.
  out.message.topic = std::string(r.str_view());
  const BytesView payload = r.bytes_view();
  out.message.payload.assign(payload.begin(), payload.end());
  if (!r.at_end()) {
    throw std::length_error("decode_frame: malformed frame body");
  }
  out.consumed = 4u + body_len;
  return out;
}

}  // namespace dauct::net
