#include "net/message.hpp"

#include <stdexcept>

#include "serde/codec.hpp"

namespace dauct::net {

namespace {
void sha256_into(const std::uint8_t* data, std::size_t size, std::uint8_t out[32]) {
  const crypto::Digest d = crypto::sha256(BytesView(data, size));
  std::copy(d.begin(), d.end(), out);
}
}  // namespace

const crypto::Digest& payload_digest(const SharedBytes& payload) {
  static_assert(std::is_same_v<crypto::Digest, std::array<std::uint8_t, 32>>,
                "the SharedBytes digest slot doubles as a crypto::Digest");
  return payload.shared_digest(&sha256_into);
}

const crypto::Digest& Message::payload_digest() const {
  return net::payload_digest(payload);
}

Bytes encode_frame(const Message& msg) {
  // Exact frame size, known up front: one reservation, no body→frame copy.
  const std::size_t body_len = 4 + 4 + serde::varint_len(msg.topic.size()) +
                               msg.topic.size() +
                               serde::varint_len(msg.payload.size()) +
                               msg.payload.size();
  serde::Writer w(4 + body_len);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.u32(msg.from);
  w.u32(msg.to);
  w.str(msg.topic.str());
  w.bytes(msg.payload.view());
  return w.take();
}

std::optional<DecodedFrame> decode_frame(BytesView data) {
  if (data.size() < 4) return std::nullopt;
  serde::Reader header(data.subspan(0, 4));
  const std::uint32_t body_len = header.u32();
  if (body_len > kMaxFrameBytes) {
    throw std::length_error("decode_frame: oversized frame");
  }
  if (data.size() < 4u + body_len) return std::nullopt;

  serde::Reader r(data.subspan(4, body_len));
  DecodedFrame out;
  out.message.from = r.u32();
  out.message.to = r.u32();
  // View-based reads: the topic interns straight from the view; the payload
  // is copied exactly once, into the immutable shared buffer every in-process
  // hop aliases from here on.
  out.message.topic = Topic(r.str_view());
  out.message.payload = SharedBytes::copy(r.bytes_view());
  if (!r.at_end()) {
    throw std::length_error("decode_frame: malformed frame body");
  }
  out.consumed = 4u + body_len;
  return out;
}

}  // namespace dauct::net
