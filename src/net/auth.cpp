#include "net/auth.hpp"

#include <cstring>

namespace dauct::net {

namespace {

/// (sender, topic) routing-slot key.
std::uint64_t slot_key(NodeId sender, std::uint32_t topic_id) {
  return (static_cast<std::uint64_t>(sender) << 32) | topic_id;
}

void put_u32_le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

bool verify_transcript(const crypto::ed25519::PublicKey& pk,
                       const crypto::Digest& transcript,
                       const crypto::ed25519::Signature& sig) {
  return crypto::ed25519::verify(pk, BytesView(transcript), sig);
}

}  // namespace

AuthStats& AuthStats::operator+=(const AuthStats& o) {
  tracked = tracked || o.tracked;
  signed_sends += o.signed_sends;
  signed_reuses += o.signed_reuses;
  verified_eager += o.verified_eager;
  verified_batched += o.verified_batched;
  batches += o.batches;
  rejected_bad_sig += o.rejected_bad_sig;
  rejected_malformed += o.rejected_malformed;
  replays_dropped += o.replays_dropped;
  equivocations += o.equivocations;
  return *this;
}

crypto::Digest auth_transcript(NodeId sender, std::string_view topic,
                               BytesView payload) {
  crypto::Sha256 h;
  std::uint8_t hdr[8];
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<std::uint8_t>(sender >> (8 * i));
    hdr[4 + i] = static_cast<std::uint8_t>(topic.size() >> (8 * i));
  }
  h.update(kAuthDomain);
  h.update(BytesView(hdr, 8));
  h.update(topic);
  h.update(payload);
  return h.finish();
}

KeyDirectory::KeyDirectory(std::size_t num_providers, std::uint64_t run_seed) {
  pairs_.reserve(num_providers);
  for (std::size_t n = 0; n < num_providers; ++n) {
    // Seed_n = SHA-256("dauct-auth-key" || run_seed u64 LE || n u32 LE):
    // independent per provider, reproducible per run.
    Bytes material;
    material.reserve(32);
    append(material, BytesView(
        reinterpret_cast<const std::uint8_t*>("dauct-auth-key"), 14));
    for (int i = 0; i < 8; ++i) {
      material.push_back(static_cast<std::uint8_t>(run_seed >> (8 * i)));
    }
    put_u32_le(material, static_cast<std::uint32_t>(n));
    const crypto::Digest d = crypto::sha256(BytesView(material));
    crypto::ed25519::Seed seed;
    std::memcpy(seed.data(), d.data(), seed.size());
    pairs_.push_back(crypto::ed25519::keypair_from_seed(seed));
  }
}

bool verify_equivocation_proof(const EquivocationProof& proof,
                               const crypto::ed25519::PublicKey& pk) {
  if (proof.payload1 == proof.payload2) return false;  // no conflict, no proof
  const crypto::Digest t1 =
      auth_transcript(proof.signer, proof.topic, proof.payload1);
  const crypto::Digest t2 =
      auth_transcript(proof.signer, proof.topic, proof.payload2);
  return verify_transcript(pk, t1, proof.sig1) &&
         verify_transcript(pk, t2, proof.sig2);
}

SignerEndpoint::SignerEndpoint(blocks::Endpoint& inner,
                               std::shared_ptr<const KeyDirectory> keys,
                               AuthStats* stats)
    : inner_(inner), keys_(std::move(keys)), stats_(stats) {
  if (stats_) stats_->tracked = true;
}

void SignerEndpoint::send(NodeId to, const Topic& topic, SharedBytes payload) {
  // Client-bound traffic (to >= m) crosses no provider validator: unsigned.
  if (to >= keys_->size()) {
    inner_.send(to, topic, std::move(payload));
    return;
  }
  inner_.send(to, topic, signed_frame(topic, payload));
}

SharedBytes SignerEndpoint::signed_frame(const Topic& topic,
                                         const SharedBytes& payload) {
  if (topic.id() == cached_topic_id_ && payload.same_buffer(cached_plain_) &&
      !cached_frame_.empty()) {
    if (stats_) ++stats_->signed_reuses;
    return cached_frame_;
  }
  const crypto::Digest t = auth_transcript(self(), topic.str(), payload);
  const crypto::ed25519::Signature sig =
      crypto::ed25519::sign(keys_->pair(self()), BytesView(t));

  Bytes frame;
  frame.reserve(kAuthHeaderBytes + payload.size());
  frame.push_back(kAuthMagic);
  append(frame, BytesView(sig));
  append(frame, payload);

  cached_topic_id_ = topic.id();
  cached_plain_ = payload;
  cached_frame_ = SharedBytes(std::move(frame));
  if (stats_) ++stats_->signed_sends;
  return cached_frame_;
}

MessageValidator::MessageValidator(NodeId self,
                                   std::shared_ptr<const KeyDirectory> keys,
                                   AuthConfig config, std::uint64_t rng_seed,
                                   AuthStats* stats)
    : self_(self),
      keys_(std::move(keys)),
      config_(config),
      stats_(stats),
      batch_rng_(rng_seed) {
  if (stats_) stats_->tracked = true;
}

MessageValidator::Action MessageValidator::on_deliver(Message& msg) {
  // Client traffic is unsigned (clients hold no keys), and the reliability
  // link's control frames originate below the signer.
  if (msg.from >= keys_->size()) return Action::kDeliver;
  if (blocks::topic_has_prefix(msg.topic.str(), "rl")) return Action::kDeliver;

  const BytesView raw = msg.payload.view();
  if (raw.size() < kAuthHeaderBytes || raw[0] != kAuthMagic) {
    if (stats_) ++stats_->rejected_malformed;
    return Action::kDrop;
  }
  crypto::ed25519::Signature sig;
  std::memcpy(sig.data(), raw.data() + 1, sig.size());
  SharedBytes stripped = msg.payload.suffix(kAuthHeaderBytes);
  const crypto::Digest& digest = payload_digest(stripped);
  const crypto::Digest transcript =
      auth_transcript(msg.from, msg.topic.str(), stripped);
  const crypto::ed25519::PublicKey& pk = keys_->public_key(msg.from);

  const std::uint64_t key = slot_key(msg.from, msg.topic.id());
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    SenderRecord& held = records_[it->second.record_index];
    if (held.digest == digest) {
      // Byte-identical resend of the slot's payload (a replayed frame, or a
      // retransmission that slipped past the link dedup): swallow it.
      if (stats_) ++stats_->replays_dropped;
      return Action::kDrop;
    }
    // Conflicting payload for an occupied slot. Accuse only on *two valid
    // signatures* — an attacker must not frame an honest sender by pairing
    // its real frame with a forged conflicting one.
    if (!verify_transcript(pk, transcript, sig)) {
      if (stats_) ++stats_->rejected_bad_sig;
      return Action::kDrop;
    }
    const crypto::Digest held_transcript =
        auth_transcript(held.sender, held.topic.str(), held.payload);
    if (!verify_transcript(pk, held_transcript, held.signature)) {
      // Only reachable in batch mode: the held frame was delivered
      // optimistically and is in fact forged (its batch will abort). The
      // new, valid frame takes the slot.
      if (stats_) ++stats_->rejected_bad_sig;
      held.digest = digest;
      held.signature = sig;
      held.payload = stripped;
      it->second.verified = true;
      msg.set_payload(std::move(stripped));
      return Action::kDeliver;
    }
    if (stats_) ++stats_->equivocations;
    proof_ = EquivocationProof{msg.from,       held.topic.str(), held.payload,
                               stripped,       held.signature,   sig};
    abort_detail_ = "auth: equivocation by provider " +
                    std::to_string(msg.from) + " on topic " + msg.topic.str();
    return Action::kAbort;
  }

  if (!config_.batch_verify) {
    if (!verify_transcript(pk, transcript, sig)) {
      if (stats_) ++stats_->rejected_bad_sig;
      return Action::kDrop;
    }
    if (stats_) ++stats_->verified_eager;
  }

  const std::size_t index = records_.size();
  records_.push_back(SenderRecord{msg.from, msg.topic, digest, sig, stripped});
  slots_.emplace(key, Slot{index, !config_.batch_verify});

  Action batch_action = Action::kDeliver;
  if (config_.batch_verify) {
    auto& pending = pending_by_topic_[msg.topic.id()];
    pending.push_back(Pending{index, transcript});
    // A topic slot exists once per sender, so `pending` holding m entries
    // means the round is complete: verify all m signatures in one batch.
    if (pending.size() == keys_->size()) {
      batch_action = flush_batch(pending);
      pending_by_topic_.erase(msg.topic.id());
    }
  }
  if (batch_action != Action::kDeliver) return batch_action;
  msg.set_payload(std::move(stripped));
  return Action::kDeliver;
}

MessageValidator::Action MessageValidator::flush_batch(
    std::vector<Pending>& pending) {
  std::vector<crypto::ed25519::BatchItem> items;
  items.reserve(pending.size());
  for (const Pending& p : pending) {
    const SenderRecord& rec = records_[p.record_index];
    items.push_back({&keys_->public_key(rec.sender), BytesView(p.transcript),
                     &rec.signature});
  }
  if (stats_) ++stats_->batches;
  if (crypto::ed25519::verify_batch(items, batch_rng_)) {
    for (const Pending& p : pending) {
      slots_[slot_key(records_[p.record_index].sender,
                      records_[p.record_index].topic.id())]
          .verified = true;
    }
    if (stats_) stats_->verified_batched += pending.size();
    return Action::kDeliver;
  }
  // Attribute: one individual verify per item. The forged frame was already
  // delivered optimistically, so this is an abort, not a reject.
  for (const Pending& p : pending) {
    const SenderRecord& rec = records_[p.record_index];
    if (!verify_transcript(keys_->public_key(rec.sender), p.transcript,
                           rec.signature)) {
      if (stats_) ++stats_->rejected_bad_sig;
      abort_detail_ = "auth: invalid signature attributed to provider " +
                      std::to_string(rec.sender) + " on topic " +
                      rec.topic.str() + " (batched, delivered optimistically)";
      return Action::kAbort;
    }
  }
  abort_detail_ = "auth: batch verification failed without attribution";
  return Action::kAbort;
}

MessageValidator::Action MessageValidator::finalize() {
  for (auto& [topic_id, pending] : pending_by_topic_) {
    if (pending.empty()) continue;
    if (flush_batch(pending) == Action::kAbort) return Action::kAbort;
  }
  pending_by_topic_.clear();
  return Action::kDeliver;
}

std::optional<EquivocationProof> audit_equivocation(
    const std::vector<const MessageValidator*>& validators,
    const KeyDirectory& keys) {
  // First validly-signed record seen per (sender, topic) slot, across all
  // receivers; a later conflicting valid record completes a proof.
  std::unordered_map<std::uint64_t, const MessageValidator::SenderRecord*>
      first_seen;
  for (const MessageValidator* v : validators) {
    for (const MessageValidator::SenderRecord& rec : v->records()) {
      const std::uint64_t key = slot_key(rec.sender, rec.topic.id());
      auto [it, inserted] = first_seen.emplace(key, &rec);
      if (inserted || it->second->digest == rec.digest) continue;
      const MessageValidator::SenderRecord& held = *it->second;
      EquivocationProof proof{rec.sender,    rec.topic.str(), held.payload,
                              rec.payload,   held.signature,  rec.signature};
      // Both frames carry real signatures or they would not be on record
      // (eager mode) — but batch mode can record an unverified forgery, so
      // check before accusing.
      if (verify_equivocation_proof(proof, keys.public_key(rec.sender))) {
        return proof;
      }
    }
  }
  return std::nullopt;
}

}  // namespace dauct::net
