// Reliable-delivery layer: ack/retransmit + dedup between the protocol
// blocks and a lossy transport.
//
// The paper's model assumes reliable non-duplicating channels; the simulated
// community network (sim/fault.hpp) is neither. ReliableLink restores the
// channel contract on top of it:
//
//   engine → [DeviantEndpoint] → ReliableLink → SimEndpoint → scheduler
//
//  * Sender side: every data message to a provider is keyed by
//    (peer, topic, sha256(payload)) and kept until the matching ack arrives.
//    A virtual-time timer retransmits it with exponential backoff
//    (retransmit_delay · 2^attempt); after max_retries unacked retransmits
//    the link gives up and reports the peer unreachable through the give-up
//    callback (the runtime turns that into a clean ⊥ with
//    AbortReason::kDeliveryFailed — termination instead of a silent stall).
//  * Receiver side: every data message from a provider is acked
//    (net::kAckTopicName, payload = topic string ++ 32-byte payload digest)
//    and deduplicated by the same digest key *before* the blocks see it, so
//    a retransmitted or network-duplicated copy is never misread as
//    equivocation by a RoundCollector. Duplicates are re-acked: a lost ack
//    costs one retransmit, not a stall.
//  * Re-requests: the link keeps the last payload it sent per (peer, topic)
//    and answers net::kRetransmitRequestTopicName messages from it — the
//    recovery path the blocks' round watchdogs (RoundCollector::arm) use
//    when sender-driven retransmission cannot help: the sender already gave
//    up, or it crashed before ever sending (its due timers are deferred to
//    the recovery instant by the scheduler, not lost — but a contribution
//    it never produced has no timer to defer).
//
// Everything runs in virtual time through the wrapped endpoint's
// schedule_after(); with reliability disabled no link is constructed and the
// event stream is byte-identical to the pre-reliability implementation
// (pinned against the golden fingerprints). Full wire contract:
// docs/RELIABILITY.md.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "blocks/block.hpp"
#include "sim/clock.hpp"

namespace dauct::net {

/// Declarative reliability knobs, threaded from scenario files / CLI flags
/// through SimRunConfig. Defaults are tuned for the community latency model
/// (one-way base 2.5 ms → first retransmit comfortably past one RTT).
struct ReliabilityConfig {
  bool enable = false;
  sim::SimTime retransmit_delay = sim::from_millis(8);  ///< backoff base
  std::size_t max_retries = 6;       ///< retransmits before giving up
  sim::SimTime round_timeout = sim::from_millis(12);  ///< 0 = no watchdogs

  /// Carry pending ack vectors on outgoing data frames instead of sending
  /// each ack as its own message. On receipt of a data frame the ack is
  /// queued; any data frame to that peer before the end-of-instant flush
  /// timer carries the queue in a length-prefixed header (the frame's last
  /// wire wrapper, below signatures), and only the leftovers go out as
  /// standalone rl/ack frames. Same virtual-time ack instants — the flush
  /// timer fires at the handler's end, exactly when the immediate ack would
  /// have departed — so the protocol outcome is unchanged; the message count
  /// drops. Both ends of a link must agree on this flag (one runtime config
  /// sets every link's). Falls back to immediate standalone acks on
  /// endpoints without a timer facility.
  bool piggyback_acks = true;

  /// Bound on the receiver dedup set and the sender key history (entries,
  /// FIFO-evicted). Without a bound those sets grow with every distinct
  /// message for the lifetime of the link — a leak on long runs. Eviction
  /// only forgets messages old enough that their retransmission window
  /// (max_retries backoffs) has long closed, so correctness is unaffected
  /// unless the window is set absurdly small. Must be >= 1.
  std::size_t dedup_window = 4096;
};

/// What the link did, for reports and assertions (aggregated per run into
/// SimRunResult::reliability_stats).
struct ReliabilityStats {
  std::uint64_t tracked = 0;                 ///< data sends under ack protection
  std::uint64_t acks_sent = 0;               ///< standalone rl/ack frames
  std::uint64_t acks_piggybacked = 0;        ///< ack entries carried on data frames
  std::uint64_t acks_received = 0;           ///< incl. redundant re-acks
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_suppressed = 0;   ///< copies hidden from the blocks
  std::uint64_t rerequests_sent = 0;         ///< round-watchdog re-requests
  std::uint64_t rerequests_answered = 0;     ///< answered from the sent cache
  std::uint64_t rejoin_requests_sent = 0;    ///< "*" sweeps after a recovery
  std::uint64_t rejoin_answers = 0;          ///< frames re-sent for a "*" sweep
  std::uint64_t restored_delivered = 0;      ///< dedup keys rebuilt from a WAL
  std::uint64_t give_ups = 0;                ///< messages abandoned after max_retries
  std::uint64_t dedup_evictions = 0;         ///< keys FIFO-evicted at the bound
  /// Application-level sends that reused an already-sent (peer, topic,
  /// digest) key. The dedup key is sound only while blocks never re-send an
  /// identical payload as a *new* logical message — this counter is the
  /// runtime check of that invariant (pinned to 0 across the golden runs in
  /// reliable_test; were a block ever to violate it, the fix is a sender
  /// sequence number in MsgKey, see docs/RELIABILITY.md).
  std::uint64_t sender_key_reuses = 0;

  ReliabilityStats& operator+=(const ReliabilityStats& o) {
    tracked += o.tracked;
    acks_sent += o.acks_sent;
    acks_piggybacked += o.acks_piggybacked;
    acks_received += o.acks_received;
    retransmits += o.retransmits;
    duplicates_suppressed += o.duplicates_suppressed;
    rerequests_sent += o.rerequests_sent;
    rerequests_answered += o.rerequests_answered;
    rejoin_requests_sent += o.rejoin_requests_sent;
    rejoin_answers += o.rejoin_answers;
    restored_delivered += o.restored_delivered;
    give_ups += o.give_ups;
    dedup_evictions += o.dedup_evictions;
    sender_key_reuses += o.sender_key_reuses;
    return *this;
  }
};

class ReliableLink final : public blocks::Endpoint {
 public:
  /// Fired once per abandoned message, from timer context.
  using GiveUpFn =
      std::function<void(NodeId to, const net::Topic& topic, std::size_t attempts)>;

  ReliableLink(blocks::Endpoint& base, ReliabilityConfig config);

  // Endpoint: sends are tracked, everything else forwards to the base.
  NodeId self() const override { return base_.self(); }
  std::size_t num_providers() const override { return base_.num_providers(); }
  crypto::Rng& rng() override { return base_.rng(); }
  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override;
  bool schedule_after(std::int64_t delay_ns, std::function<void()> fn) override {
    return base_.schedule_after(delay_ns, std::move(fn));
  }
  std::int64_t round_timeout() const override { return config_.round_timeout; }

  /// Inbound hook, called by the runtime before the engine sees a delivery.
  /// Returns true iff `msg` should reach the application: control traffic
  /// (acks, re-requests) and deduplicated copies are consumed here. With
  /// piggybacked acks on, the link's wire header is stripped from
  /// `msg.payload` in place (an aliasing suffix view — no byte copy) before
  /// the message continues up the chain.
  bool on_deliver(net::Message& msg);

  /// Recovery support (store/wal.hpp; sequence in docs/DURABILITY.md):
  /// record a message a *previous incarnation* of this node already consumed
  /// — the key goes straight into the receiver dedup set, with no ack and no
  /// forwarding — so that post-recovery wire duplicates (peer retransmits,
  /// the node's own replayed broadcasts echoed back by nobody, rejoin-sweep
  /// answers) are suppressed instead of reaching the fresh engine twice.
  /// `msg` must be the engine-facing form the WAL logged (headers stripped).
  /// Client traffic (from outside the provider domain) is not deduplicated
  /// on the live path, so it is not restored either.
  void restore_delivered(const net::Message& msg);

  /// Broadcast the rejoin sweep: a re-request with the wildcard payload "*"
  /// to every other provider, asking each to re-send everything in its sent
  /// cache addressed to this node. Peers that predate the wildcard treat it
  /// as an unknown topic name and drop it — the sweep degrades, never harms.
  /// Called once after a WAL replay; the replayed engine's own re-sends and
  /// round watchdogs cover whatever the sweep cannot.
  void request_rejoin();

  void set_on_give_up(GiveUpFn fn) { on_give_up_ = std::move(fn); }
  const ReliabilityStats& stats() const { return stats_; }
  const ReliabilityConfig& config() const { return config_; }

  /// Current receiver-dedup set size (tests pin the dedup_window bound).
  std::size_t dedup_entries() const { return seen_.size(); }
  /// Current sender key-history size (bounded by the same window).
  std::size_t sent_key_entries() const { return sent_keys_.size(); }

 private:
  /// Identity of one logical message: peer + round topic + payload digest.
  /// (`node` is the receiver for pending sends, the sender for the dedup
  /// set.) Distinct logical messages never collide — a round carries one
  /// payload per (sender, topic) — while every retransmitted or duplicated
  /// copy of the same message maps to the same key.
  struct MsgKey {
    NodeId node;
    std::uint32_t topic;
    crypto::Digest digest;
    bool operator==(const MsgKey&) const = default;
  };
  struct MsgKeyHash {
    std::size_t operator()(const MsgKey& k) const;
  };
  struct Pending {
    NodeId to;
    net::Topic topic;
    SharedBytes payload;
    std::size_t attempt = 0;
  };

  /// Arm the next retransmit timer for `key`; false iff the wrapped
  /// endpoint has no timer facility.
  bool schedule_retransmit(const MsgKey& key, std::size_t attempt);
  void queue_or_send_ack(const net::Message& msg);
  void send_ack_frame(NodeId to, const std::string& topic,
                      const crypto::Digest& digest);
  /// Single wire-exit point for data frames (fresh sends, retransmits,
  /// re-request answers): with piggybacking on, wraps `payload` in the
  /// link header carrying `to`'s pending ack vector.
  void wire_send(NodeId to, const net::Topic& topic, const SharedBytes& payload);
  void flush_pending_acks();

  blocks::Endpoint& base_;
  ReliabilityConfig config_;
  std::size_t m_;  ///< providers: the reliability domain (client traffic passes through)
  net::Topic ack_topic_;
  net::Topic rreq_topic_;

  /// Insert `key` into `set` with FIFO eviction at config_.dedup_window
  /// (`order` tracks insertion order). Returns false if already present.
  bool bounded_insert(std::unordered_set<MsgKey, MsgKeyHash>& set,
                      std::deque<MsgKey>& order, const MsgKey& key);

  std::unordered_map<MsgKey, Pending, MsgKeyHash> unacked_;
  /// Receiver dedup set + its FIFO eviction order: bounded at
  /// config_.dedup_window entries, not by run length.
  std::unordered_set<MsgKey, MsgKeyHash> seen_;
  std::deque<MsgKey> seen_order_;
  /// Keys of application-level sends (same bound): detects a block re-sending
  /// an identical (peer, topic, payload) as a new logical message — which
  /// receiver dedup would silently swallow (stats_.sender_key_reuses).
  std::unordered_set<MsgKey, MsgKeyHash> sent_keys_;
  std::deque<MsgKey> sent_keys_order_;
  /// Last payload sent per (peer, topic id) — the re-request answer source
  /// and, swept whole, the rejoin answer source. Stores the *unwrapped*
  /// payload: every wire exit wraps afresh, so a re-request answer carries
  /// the acks pending at answer time, and digests stay consistent across
  /// original / retransmit / answer copies. The Topic rides along because a
  /// rejoin sweep must reconstruct frames from the id-keyed cache alone.
  struct CachedSend {
    net::Topic topic;
    SharedBytes payload;
  };
  std::unordered_map<std::uint64_t, CachedSend> sent_cache_;

  /// Acks owed per peer, awaiting a data frame to ride on (or the
  /// end-of-instant flush). Only used with config_.piggyback_acks and a
  /// working timer facility.
  struct PendingAck {
    std::string topic;       ///< round-topic name, as the ack frame carries it
    crypto::Digest digest;
  };
  std::unordered_map<NodeId, std::vector<PendingAck>> pending_acks_;
  bool ack_flush_scheduled_ = false;

  GiveUpFn on_give_up_;
  ReliabilityStats stats_;
  /// Cleared the first time schedule_after() reports no timer facility
  /// (endpoints of the thread/TCP runtimes): the link stops tracking sends
  /// — retransmission is impossible, and pending entries nothing can retire
  /// must not accumulate — while acks and dedup keep working.
  bool timers_available_ = true;
  /// Liveness token for timer callbacks: timers hold it weakly, so a due
  /// timer outliving the link degrades to a no-op instead of a dangling call.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace dauct::net
