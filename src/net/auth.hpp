// Message authentication: ed25519 signatures under the protocol blocks.
//
// The paper's protocol assumes authenticated channels; up to now the
// simulator modelled that assumption as "adversaries only reorder, drop, or
// duplicate". This layer discharges it: every provider-bound payload is
// signed on send and verified on deliver, so a network-level adversary can no
// longer forge a frame as another provider, and a *protocol-level* equivocator
// (same round slot, different payloads to different peers) leaves behind a
// transferable proof — two valid signatures by one key over conflicting
// payloads — that any third party can check with the public key alone.
//
// Wire format (the signed frame replaces the payload on the wire):
//
//   [0]      0xA1  magic
//   [1..65)  ed25519 signature (64 bytes)
//   [65..)   original payload
//
// The signature covers the *transcript hash*
//
//   SHA-256("dauct-auth-v1" || sender u32 LE || topic_len u32 LE
//           || topic bytes || payload bytes)
//
// — sender and topic bind the signature to its routing slot (no cross-topic
// or cross-sender splicing); the receiver is deliberately NOT in the
// transcript, so one broadcast needs one signature and the signed buffer
// fans out zero-copy (SignerEndpoint caches the last payload→frame mapping;
// the m recipients alias one signed buffer).
//
// Placement in the endpoint chain (outermost first):
//
//   engine → [DeviantEndpoint] → SignerEndpoint → [ReliableLink] → transport
//
// and on deliver: transport → ReliableLink::on_deliver → MessageValidator →
// engine. The deviant sits *above* the signer on purpose: a deviation models
// a compromised provider, and a compromised provider signs its tampered
// output with its own (to it, legitimate) key — the stolen-key equivocator
// scenario. The link below signs nothing and verifies nothing: its control
// frames (rl/*) are unauthenticated metadata, and its dedup/ack digests refer
// to the signed frames actually on the wire.
//
// Verification modes: eager (default) verifies each frame before delivery —
// forged frames are *rejected* (dropped, run continues). Batch mode delivers
// optimistically and verifies a round's m signatures in one small-exponent
// batch (crypto/ed25519.hpp), amortizing the curve work — but detection is
// late, so a bad signature becomes an *abort*, not a reject. docs/AUTH.md
// spells out the tradeoff.
//
// With auth disabled nothing here is constructed and runs are byte-identical
// to the unauthenticated simulator (golden-fingerprint-pinned in auth_test).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocks/block.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "net/topic.hpp"

namespace dauct::net {

/// First byte of a signed frame.
inline constexpr std::uint8_t kAuthMagic = 0xA1;
/// Signed-frame header size: magic + 64-byte signature.
inline constexpr std::size_t kAuthHeaderBytes = 65;
/// Domain-separation prefix of the signing transcript.
inline constexpr std::string_view kAuthDomain = "dauct-auth-v1";

struct AuthConfig {
  bool enable = false;
  /// Verify per-message (false) or per-round batch (true). Batch mode
  /// delivers optimistically: cheaper, but forged frames abort instead of
  /// being rejected.
  bool batch_verify = false;
};

/// Counters of the signing layer. `tracked` distinguishes "auth off" from
/// "auth on, nothing happened" in reports (mirrors ReliabilityStats).
struct AuthStats {
  bool tracked = false;
  std::uint64_t signed_sends = 0;      ///< frames signed (cache misses)
  std::uint64_t signed_reuses = 0;     ///< broadcast fan-out cache hits
  std::uint64_t verified_eager = 0;    ///< per-message verifications
  std::uint64_t verified_batched = 0;  ///< signatures cleared via a batch
  std::uint64_t batches = 0;           ///< batch verifications run
  std::uint64_t rejected_bad_sig = 0;  ///< frames dropped: signature invalid
  std::uint64_t rejected_malformed = 0;  ///< frames dropped: no/bad header
  std::uint64_t replays_dropped = 0;   ///< duplicate (sender,topic) payloads
  std::uint64_t equivocations = 0;     ///< conflicting signed payloads seen

  AuthStats& operator+=(const AuthStats& o);
};

/// The transcript hash a provider signs for (sender, topic, payload).
crypto::Digest auth_transcript(NodeId sender, std::string_view topic,
                               BytesView payload);

/// All m providers' keypairs for one run, derived deterministically from the
/// run seed (reproducibility). In the simulator every node holds the whole
/// directory; a real deployment would distribute only public keys at setup
/// and each node its own seed — the verification paths below use nothing but
/// public keys, so the trust structure is honest even if the storage is not.
class KeyDirectory {
 public:
  KeyDirectory(std::size_t num_providers, std::uint64_t run_seed);

  std::size_t size() const { return pairs_.size(); }
  const crypto::ed25519::KeyPair& pair(NodeId n) const { return pairs_[n]; }
  const crypto::ed25519::PublicKey& public_key(NodeId n) const {
    return pairs_[n].public_key;
  }

 private:
  std::vector<crypto::ed25519::KeyPair> pairs_;
};

/// Proof that `signer` equivocated on `topic`: two valid signatures by its
/// key over *different* payloads for the same routing slot. Self-contained
/// (topic carried as a string, payloads inline): any third party holding the
/// signer's public key can check it — see verify_equivocation_proof(). This
/// is what turns "I saw provider 2 equivocate" (a claim) into evidence that
/// travels in the abort report.
struct EquivocationProof {
  NodeId signer = kNoNode;
  std::string topic;
  SharedBytes payload1, payload2;
  crypto::ed25519::Signature sig1{}, sig2{};
};

/// Check an equivocation proof using only the accused signer's public key:
/// the payloads must differ and both signatures must verify over their
/// respective (signer, topic, payload) transcripts.
bool verify_equivocation_proof(const EquivocationProof& proof,
                               const crypto::ed25519::PublicKey& pk);

/// Signs provider-bound payloads on their way down the endpoint chain.
/// Client-bound sends (to >= m) and everything below the chain (the link's
/// rl/* control frames) pass through untouched.
class SignerEndpoint final : public blocks::Endpoint {
 public:
  SignerEndpoint(blocks::Endpoint& inner,
                 std::shared_ptr<const KeyDirectory> keys, AuthStats* stats);

  NodeId self() const override { return inner_.self(); }
  std::size_t num_providers() const override { return inner_.num_providers(); }
  crypto::Rng& rng() override { return inner_.rng(); }
  bool schedule_after(std::int64_t delay_ns,
                      std::function<void()> fn) override {
    return inner_.schedule_after(delay_ns, std::move(fn));
  }
  std::int64_t round_timeout() const override { return inner_.round_timeout(); }

  void send(NodeId to, const Topic& topic, SharedBytes payload) override;

 private:
  SharedBytes signed_frame(const Topic& topic, const SharedBytes& payload);

  blocks::Endpoint& inner_;
  std::shared_ptr<const KeyDirectory> keys_;
  AuthStats* stats_;  ///< borrowed; may be null (untracked)

  // One-slot frame cache: broadcast() calls send() m times with the same
  // (topic, payload buffer); sign once, alias the frame m times.
  std::uint32_t cached_topic_id_ = 0;
  SharedBytes cached_plain_, cached_frame_;
};

/// Verifies and strips signed frames on the deliver path, detects replays
/// and (receiver-local) equivocation, and keeps the per-(sender, topic)
/// evidence records the post-run auditor sweep cross-references.
class MessageValidator {
 public:
  enum class Action {
    kDeliver,  ///< frame valid (or exempt): pass msg — payload stripped — up
    kDrop,     ///< frame rejected or replayed: swallow it, run continues
    kAbort,    ///< equivocation (or late batch failure): abort this provider
  };

  /// `rng_seed` feeds the batch-verification coefficients (deterministic
  /// runs); `stats` is borrowed and may be null.
  MessageValidator(NodeId self, std::shared_ptr<const KeyDirectory> keys,
                   AuthConfig config, std::uint64_t rng_seed, AuthStats* stats);

  /// Process a delivered message *after* the reliability link and before the
  /// engine. On kDeliver, msg.payload has been replaced by the stripped
  /// (signature-less) view. On kAbort, abort_detail()/proof() explain.
  Action on_deliver(Message& msg);

  /// Batch mode: verify whatever is still pending (stragglers of incomplete
  /// rounds). kDeliver if clean, kAbort on a bad signature. Eager mode: no-op.
  Action finalize();

  /// Human-readable reason for the last kAbort.
  const std::string& abort_detail() const { return abort_detail_; }

  /// The transferable proof behind the last equivocation kAbort, if one was
  /// assembled (receiver-local detection sees both conflicting frames).
  const std::optional<EquivocationProof>& proof() const { return proof_; }

  /// Evidence record: the signed payload this receiver accepted for one
  /// (sender, topic) slot.
  struct SenderRecord {
    NodeId sender = kNoNode;
    Topic topic{};
    crypto::Digest digest{};  ///< of the stripped payload
    crypto::ed25519::Signature signature{};
    SharedBytes payload;  ///< stripped
  };
  const std::vector<SenderRecord>& records() const { return records_; }

 private:
  struct Slot {
    std::size_t record_index;  ///< into records_
    bool verified;             ///< false while waiting in a batch
  };
  struct Pending {
    std::size_t record_index;
    crypto::Digest transcript;
  };

  Action flush_batch(std::vector<Pending>& pending);

  NodeId self_;
  std::shared_ptr<const KeyDirectory> keys_;
  AuthConfig config_;
  AuthStats* stats_;
  crypto::Rng batch_rng_;

  std::unordered_map<std::uint64_t, Slot> slots_;  ///< (sender,topic) → slot
  std::vector<SenderRecord> records_;
  std::unordered_map<std::uint32_t, std::vector<Pending>> pending_by_topic_;
  std::string abort_detail_;
  std::optional<EquivocationProof> proof_;
};

/// Post-run auditor sweep: cross-reference every receiver's evidence records
/// and assemble a proof for any (sender, topic) slot where two receivers hold
/// conflicting *validly signed* payloads. This catches split equivocation —
/// different payloads to different peers — which no single receiver can see
/// locally. In the simulator the auditor reads all validators directly; in a
/// real deployment the same records would travel in a post-protocol
/// evidence-exchange round (docs/AUTH.md).
std::optional<EquivocationProof> audit_equivocation(
    const std::vector<const MessageValidator*>& validators,
    const KeyDirectory& keys);

}  // namespace dauct::net
