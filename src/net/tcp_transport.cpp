#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace dauct::net {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  return addr;
}

}  // namespace

TcpNode::TcpNode(NodeId self, TcpPeers peers) : self_(self), peers_(peers) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpNode: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(peers_.host, peers_.port_of(self_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpNode: bind() failed on port " +
                             std::to_string(peers_.port_of(self_)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpNode: listen() failed");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpNode::~TcpNode() { shutdown(); }

void TcpNode::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(readers_mutex_);
    accepted_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpNode::reader_loop(int fd) {
  // Frames: u32 body length + body (see net/message.hpp).
  for (;;) {
    std::uint8_t len_buf[4];
    if (!read_exact(fd, len_buf, 4)) break;
    const std::uint32_t body_len = static_cast<std::uint32_t>(len_buf[0]) |
                                   static_cast<std::uint32_t>(len_buf[1]) << 8 |
                                   static_cast<std::uint32_t>(len_buf[2]) << 16 |
                                   static_cast<std::uint32_t>(len_buf[3]) << 24;
    if (body_len > kMaxFrameBytes) {
      DAUCT_WARN("tcp: oversized frame (" << body_len << " bytes); dropping peer");
      break;
    }
    Bytes frame(4 + body_len);
    std::memcpy(frame.data(), len_buf, 4);
    if (body_len > 0 && !read_exact(fd, frame.data() + 4, body_len)) break;
    try {
      if (auto decoded = decode_frame(BytesView(frame))) {
        inbox_.push(std::move(decoded->message));
      }
    } catch (const std::length_error&) {
      DAUCT_WARN("tcp: malformed frame; dropping peer");
      break;
    }
  }
  // The fd is closed centrally in shutdown(): closing here would race with
  // shutdown()'s wake-up ::shutdown() on a recycled descriptor.
}

int TcpNode::connect_to(NodeId peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = make_addr(peers_.host, peers_.port_of(peer));
  // Peers start concurrently; retry briefly while the listener comes up.
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno != ECONNREFUSED && errno != EINTR) break;
    ::usleep(20'000);
  }
  ::close(fd);
  return -1;
}

bool TcpNode::send(Message msg) {
  const NodeId to = msg.to;
  if (to == self_) {  // self-delivery shortcut (no socket round-trip)
    return inbox_.push(std::move(msg));
  }
  std::lock_guard lock(out_mutex_);
  auto it = out_fds_.find(to);
  if (it == out_fds_.end()) {
    const int fd = connect_to(to);
    if (fd < 0) {
      DAUCT_WARN("tcp: connect to node " << to << " failed");
      return false;
    }
    it = out_fds_.emplace(to, fd).first;
  }
  const Bytes frame = encode_frame(msg);
  if (!write_all(it->second, frame.data(), frame.size())) {
    // The cached connection died (peer restarted, RST in flight): retry once
    // over a fresh one before reporting failure.
    ::close(it->second);
    out_fds_.erase(it);
    const int fd = connect_to(to);
    if (fd < 0) return false;
    if (!write_all(fd, frame.data(), frame.size())) {
      ::close(fd);
      return false;
    }
    out_fds_.emplace(to, fd);
  }
  return true;
}

void TcpNode::reset_peer(NodeId peer) {
  std::lock_guard lock(out_mutex_);
  const auto it = out_fds_.find(peer);
  if (it == out_fds_.end()) return;
  ::close(it->second);
  out_fds_.erase(it);
}

void TcpNode::shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard lock(out_mutex_);
    for (auto& [peer, fd] : out_fds_) ::close(fd);
    out_fds_.clear();
  }
  inbox_.close();
  std::vector<std::thread> readers;
  std::vector<int> accepted;
  {
    std::lock_guard lock(readers_mutex_);
    // Wake blocked readers: shutting down the accepted sockets makes their
    // recv() return 0/err immediately (waiting for the peer to close would
    // deadlock when nodes in one process shut down sequentially).
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
    accepted.swap(accepted_fds_);
    readers.swap(readers_);
  }
  for (auto& t : readers) t.join();
  for (int fd : accepted) ::close(fd);
}

std::uint16_t pick_base_port(std::uint16_t span) {
  const auto pid = static_cast<std::uint32_t>(::getpid());
  return static_cast<std::uint16_t>(20'000 + (pid * 131) % (20'000 - span));
}

}  // namespace dauct::net
