// Interned routing topics.
//
// Topics are hierarchical strings ("ba/vb/v", "alloc/dt/2/val") that every
// block compares against its own topics for every delivered message. Interning
// turns those per-message comparisons into integer equality: a Topic is a
// 32-bit id plus a pointer to the canonical string in a process-wide
// append-only registry. Routing compares ids; traces, TCP frames, and prefix
// dispatch still read the string through str() (a plain pointer dereference —
// no registry access, so it is lock-free and safe from any thread).
//
// The registry is bounded by the protocol structure (a handful of topics per
// block instance), not by traffic: interning happens at block construction
// and once per *decoded* TCP frame, never per simulated message.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dauct::net {

class Topic {
 public:
  /// The empty topic (id 0). Registry-free.
  Topic();

  /// Intern `s` (implicit: topic-expecting APIs accept plain strings).
  Topic(std::string_view s);       // NOLINT(google-explicit-constructor)
  Topic(const std::string& s);     // NOLINT(google-explicit-constructor)
  Topic(const char* s);            // NOLINT(google-explicit-constructor)

  /// Find-only query: the Topic for `s` iff some block already interned it,
  /// std::nullopt otherwise — never grows the registry. For strings arriving
  /// from *untrusted peers* (the reliability layer's ack/re-request frames):
  /// a name no local block ever registered cannot match local state, so it
  /// is dropped instead of interned, keeping the append-only registry
  /// bounded by protocol structure rather than by hostile traffic.
  static std::optional<Topic> lookup(std::string_view s);

  std::uint32_t id() const { return id_; }
  const std::string& str() const { return *str_; }
  std::size_t size() const { return str_->size(); }
  bool empty() const { return str_->empty(); }

  /// Routing equality: one integer compare. Comparing against a plain string
  /// interns it first via the implicit constructors — fine in tests and cold
  /// paths; hot paths hold pre-interned Topic values.
  friend bool operator==(const Topic& a, const Topic& b) { return a.id_ == b.id_; }
  friend bool operator!=(const Topic& a, const Topic& b) { return a.id_ != b.id_; }

 private:
  std::uint32_t id_;
  const std::string* str_;  ///< canonical string; stable for process lifetime
};

std::ostream& operator<<(std::ostream& os, const Topic& t);

/// Number of distinct topics interned so far (diagnostics/tests).
std::size_t topic_registry_size();

/// Per-scope sub-registry: memoizes base topic → "<prefix><base>" so each
/// (prefix, base) pair touches the global registry exactly once, on first
/// use. The service plane hands one of these to every auction instance with
/// a prefix derived from the instance's *pipeline slot* — slots are reused
/// as instances retire, so the global append-only registry stays bounded by
/// pipeline depth × protocol topics, not by the number of instances served
/// (a later instance in the same slot re-interns the same strings, which is
/// a no-op).
class ScopedTopicRegistry {
 public:
  explicit ScopedTopicRegistry(std::string prefix);

  const std::string& prefix() const { return prefix_; }

  /// The scoped Topic for `base`: global intern on first use, one hash
  /// lookup after. The empty prefix is the identity map.
  Topic scope(const Topic& base);

  /// Scope a topic *name* (control frames carry topic strings as payload
  /// bytes — the reliability layer's re-request names a round topic).
  std::string scope_name(std::string_view base) const;

  /// Distinct base topics this scope has mapped (diagnostics/tests).
  std::size_t size() const { return memo_.size(); }

 private:
  std::string prefix_;
  std::unordered_map<std::uint32_t, Topic> memo_;  ///< base id → scoped
};

}  // namespace dauct::net
