// Endpoint implementation over the virtual-time scheduler.
#pragma once

#include "blocks/block.hpp"
#include "sim/scheduler.hpp"

namespace dauct::net {

/// Wires a protocol engine to the simulated network: send() stamps messages
/// from this node's virtual clock and routes them through the scheduler.
class SimEndpoint final : public blocks::Endpoint {
 public:
  SimEndpoint(sim::Scheduler& scheduler, NodeId self, std::size_t num_providers,
              std::uint64_t rng_seed)
      : scheduler_(scheduler), self_(self), num_providers_(num_providers),
        rng_(rng_seed) {}

  NodeId self() const override { return self_; }
  std::size_t num_providers() const override { return num_providers_; }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    scheduler_.send(Message{self_, to, topic, std::move(payload)});
  }

  bool schedule_after(std::int64_t delay_ns, std::function<void()> fn) override {
    scheduler_.schedule_timer(scheduler_.now() + delay_ns, self_, std::move(fn));
    return true;
  }

  crypto::Rng& rng() override { return rng_; }

 private:
  sim::Scheduler& scheduler_;
  NodeId self_;
  std::size_t num_providers_;
  crypto::Rng rng_;
};

}  // namespace dauct::net
