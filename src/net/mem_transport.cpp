#include "net/mem_transport.hpp"

namespace dauct::net {

bool Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return true;
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Mailbox::pop_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  if (!cv_.wait_for(lock, timeout, [&] { return closed_ || !queue_.empty(); })) {
    return std::nullopt;  // timeout
  }
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Mailbox::try_pop() {
  std::lock_guard lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

MemNetwork::MemNetwork(std::size_t num_nodes) : mailboxes_(num_nodes) {}

void MemNetwork::post(Message msg) {
  if (msg.to < mailboxes_.size()) {
    mailboxes_[msg.to].push(std::move(msg));
  }
}

void MemNetwork::close_all() {
  for (auto& mb : mailboxes_) mb.close();
}

}  // namespace dauct::net
