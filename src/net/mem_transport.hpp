// In-memory threaded transport: one mailbox per node, real threads.
//
// Used by the ThreadRuntime to run every provider as an OS thread — the
// closest in-process analogue of the paper's multi-machine deployment, and
// the transport backing the concurrency tests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "blocks/block.hpp"
#include "net/message.hpp"

namespace dauct::net {

/// MPSC queue with blocking pop and close semantics.
class Mailbox {
 public:
  /// Enqueue; returns false if the mailbox is closed.
  bool push(Message msg);

  /// Blocking pop; std::nullopt once closed *and* drained.
  std::optional<Message> pop();

  /// Blocking pop with deadline; std::nullopt on timeout or closed+drained.
  std::optional<Message> pop_for(std::chrono::milliseconds timeout);

  /// Non-blocking pop.
  std::optional<Message> try_pop();

  /// Close: pending messages stay poppable, new pushes are refused.
  void close();

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

/// A set of mailboxes addressed by NodeId.
class MemNetwork {
 public:
  explicit MemNetwork(std::size_t num_nodes);

  void post(Message msg);
  Mailbox& mailbox(NodeId node) { return mailboxes_.at(node); }
  void close_all();

  std::size_t num_nodes() const { return mailboxes_.size(); }

 private:
  std::vector<Mailbox> mailboxes_;
};

/// Endpoint over a MemNetwork (thread-safe: post() locks per mailbox).
class MemEndpoint final : public blocks::Endpoint {
 public:
  MemEndpoint(MemNetwork& network, NodeId self, std::size_t num_providers,
              std::uint64_t rng_seed)
      : network_(network), self_(self), num_providers_(num_providers),
        rng_(rng_seed) {}

  NodeId self() const override { return self_; }
  std::size_t num_providers() const override { return num_providers_; }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    network_.post(Message{self_, to, topic, std::move(payload)});
  }

  crypto::Rng& rng() override { return rng_; }

 private:
  MemNetwork& network_;
  NodeId self_;
  std::size_t num_providers_;
  crypto::Rng rng_;
};

}  // namespace dauct::net
