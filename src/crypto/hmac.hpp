// HMAC-SHA256 (RFC 2104) and HKDF-style tag derivation.
//
// Used for domain separation: every protocol block instance derives a unique
// tag from (auction id, block name, instance key) so that messages from one
// instance can never be replayed into another.
#pragma once

#include "crypto/sha256.hpp"

namespace dauct::crypto {

/// HMAC-SHA256 of `data` under `key`.
Digest hmac_sha256(BytesView key, BytesView data);

/// Derive a 32-byte domain-separation tag from a list of labels.
/// tag = HMAC(HMAC(...HMAC(zero_key, l0), l1)..., ln)
Digest derive_tag(std::initializer_list<std::string_view> labels);

}  // namespace dauct::crypto
