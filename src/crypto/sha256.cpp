#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define DAUCT_SHA256_X86_DISPATCH 1
#endif

namespace dauct::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInit = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                                0xa54ff53a, 0x510e527f, 0x9b05688c,
                                                0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, unsigned n) { return std::rotr(x, n); }

// Portable scalar compression over `blocks` consecutive 64-byte blocks.
void compress_scalar(std::uint32_t* state, const std::uint8_t* data,
                     std::size_t blocks) {
  for (std::size_t blk = 0; blk < blocks; ++blk, data += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[i * 4]) << 24) |
             (static_cast<std::uint32_t>(data[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i * 4 + 2]) << 8) |
             (static_cast<std::uint32_t>(data[i * 4 + 3]));
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef DAUCT_SHA256_X86_DISPATCH

// Hardware compression via the x86 SHA extensions (sha256rnds2 / sha256msg1 /
// sha256msg2). Standard SHA-NI round structure; the per-round constants are
// loaded from kK (4 consecutive u32 lanes == one round-group vector), so the
// only hand-written parts are the register dance and the message schedule.
// Only ever called after the CPUID check in pick_compress().
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const auto kvec = [](int i) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK.data() + i));
  };

  // Load state as the ABEF/CDGH pairs the sha256rnds2 instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));      // DCBA
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

  for (std::size_t blk = 0; blk < blocks; ++blk, data += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3.
    __m128i msg0 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data)),
                         kShuffle);
    msg = _mm_add_epi32(msg0, kvec(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    msg = _mm_add_epi32(msg1, kvec(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    msg = _mm_add_epi32(msg2, kvec(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    msg = _mm_add_epi32(msg3, kvec(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-47: three identical schedule rotations of four groups each.
    // Written out because each group names its registers; the pattern per
    // group with schedule vector X (prev P, next N): rnds2 with X+K, then
    // N += alignr(X, P, 4); N = msg2(N, X); P = msg1(P, X).
    // Rounds 16-19.
    msg = _mm_add_epi32(msg0, kvec(16));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(msg1, kvec(20));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(msg2, kvec(24));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(msg3, kvec(28));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(msg0, kvec(32));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(msg1, kvec(36));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(msg2, kvec(40));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(msg3, kvec(44));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51 (last msg1).
    msg = _mm_add_epi32(msg0, kvec(48));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55.
    msg = _mm_add_epi32(msg1, kvec(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg2, kvec(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, kvec(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Store back in H0..H7 order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#endif  // DAUCT_SHA256_X86_DISPATCH

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);

CompressFn pick_compress() {
#ifdef DAUCT_SHA256_X86_DISPATCH
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
      __builtin_cpu_supports("ssse3")) {
    return &compress_shani;
  }
#endif
  return &compress_scalar;
}

// Resolved once at startup; both candidates compute the same FIPS 180-4
// function, so the choice is invisible to callers.
const CompressFn g_compress = pick_compress();

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = kInit;
  bit_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::compress_blocks(const std::uint8_t* data, std::size_t blocks) {
  g_compress(state_.data(), data, blocks);
}

Sha256& Sha256::update(BytesView data) {
  bit_len_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off = take;
    if (buffer_len_ == 64) {
      compress_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  // All whole blocks in one call, straight from the caller's buffer: no
  // staging copy, and the hardware path keeps the state in registers across
  // blocks.
  const std::size_t bulk = (data.size() - off) / 64;
  if (bulk > 0) {
    compress_blocks(data.data() + off, bulk);
    off += bulk * 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view data) {
  return update(BytesView(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Digest Sha256::finish() {
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len_ >> (56 - 8 * i));
  }
  update(BytesView(pad, pad_len));
  update(BytesView(len_be, 8));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(BytesView data) { return Sha256().update(data).finish(); }

Digest sha256(std::string_view data) { return Sha256().update(data).finish(); }

Digest sha256_portable(BytesView data) {
  std::array<std::uint32_t, 8> st = kInit;
  const std::size_t bulk = data.size() / 64;
  if (bulk > 0) compress_scalar(st.data(), data.data(), bulk);

  // Tail + FIPS padding in at most two blocks.
  std::uint8_t tail[128] = {};
  const std::size_t rem = data.size() - bulk * 64;
  if (rem > 0) std::memcpy(tail, data.data() + bulk * 64, rem);
  tail[rem] = 0x80;
  const std::size_t tail_blocks = rem < 56 ? 1 : 2;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress_scalar(st.data(), tail, tail_blocks);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(st[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(st[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(st[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(st[i]);
  }
  return out;
}

Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

std::string digest_hex(const Digest& d) { return to_hex(BytesView(d.data(), d.size())); }

}  // namespace dauct::crypto
