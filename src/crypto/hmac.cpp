#include "crypto/hmac.hpp"

#include <cstring>

namespace dauct::crypto {

Digest hmac_sha256(BytesView key, BytesView data) {
  std::uint8_t k[64] = {};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad, 64)).update(data);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad, 64))
      .update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Digest derive_tag(std::initializer_list<std::string_view> labels) {
  Digest tag{};  // zero key
  for (std::string_view label : labels) {
    tag = hmac_sha256(
        BytesView(tag.data(), tag.size()),
        BytesView(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  }
  return tag;
}

}  // namespace dauct::crypto
