// Ed25519 signatures (RFC 8032), implemented from scratch.
//
// Vendored next to sha256/hmac so the signing layer has no external
// dependency: a compact, allocation-free implementation in the TweetNaCl
// style (radix-2^16 field elements, extended twisted-Edwards coordinates,
// the complete a=-1 addition law). Secret-scalar multiplications (key
// generation, signing) run the constant-time conditional-swap ladder;
// verification — public data — uses a 4-bit-window variable-time multiply,
// roughly 1.5x faster per point multiplication.
//
// verify_batch() implements small-exponent batch verification: for random
// 128-bit coefficients z_i it checks
//
//     (sum z_i s_i) B  ==  sum z_i R_i + sum (z_i h_i) A_i
//
// in one multi-scalar accumulation, amortizing the shared base-point term
// and halving the R_i multiplications (128- vs 256-bit scalars) — the
// round-batch amortization the auth layer benches (BM_auth_verify_batch).
// A failing batch says only "at least one bad signature": callers fall back
// to individual verify() to attribute blame.
//
// Signatures are deterministic (RFC 8032 nonce derivation), which the
// golden-fingerprint equivalence tests rely on. Non-canonical signatures
// (s >= L) are rejected. This implementation trades side-channel hardening
// beyond the CT ladder (no cache-line scrubbing, no table masking) for
// compactness — fine for the research simulator, called out in docs/AUTH.md.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "crypto/rng.hpp"

namespace dauct::crypto::ed25519 {

using Seed = std::array<std::uint8_t, 32>;       ///< secret key material
using PublicKey = std::array<std::uint8_t, 32>;  ///< compressed point A
using Signature = std::array<std::uint8_t, 64>;  ///< R (32) || s (32)

struct KeyPair {
  Seed seed;
  PublicKey public_key;
};

/// Derive the keypair for a 32-byte seed (RFC 8032 §5.1.5).
KeyPair keypair_from_seed(const Seed& seed);

/// Sign `message` (detached, deterministic).
Signature sign(const KeyPair& kp, BytesView message);

/// Verify a detached signature. False on bad point encodings, non-canonical
/// s, or signature mismatch — never throws.
bool verify(const PublicKey& pk, BytesView message, const Signature& sig);

/// One signature of a batch. Pointers are borrowed for the call.
struct BatchItem {
  const PublicKey* public_key = nullptr;
  BytesView message;
  const Signature* signature = nullptr;
};

/// Small-exponent batch verification. True iff every signature in `items`
/// is valid (empty batch: true). `rng` supplies the random coefficients —
/// any stream works; the caller chooses determinism (a fixed-seed Rng) or
/// not. On false, at least one item is invalid; verify() each to attribute.
bool verify_batch(std::span<const BatchItem> items, Rng& rng);

}  // namespace dauct::crypto::ed25519
