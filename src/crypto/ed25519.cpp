#include "crypto/ed25519.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/sha512.hpp"

namespace dauct::crypto::ed25519 {

namespace {

using i64 = std::int64_t;
using u8 = std::uint8_t;

// --- Field arithmetic over GF(2^255 - 19), radix 2^16 ----------------------
// 16 signed-64-bit limbs of 16 bits each, TweetNaCl layout: simple enough to
// audit, fast enough that point addition (the unit of all costs here) is a
// handful of microseconds.

using Fe = std::array<i64, 16>;

constexpr Fe kGf0{};
constexpr Fe kGf1{1};
// Curve constant d = -121665/121666, its double, the base point (X, Y), and
// sqrt(-1) — limbs generated from the closed forms with exact integer math.
constexpr Fe kD = {0x78a3, 0x1359, 0x4dca, 0x75eb, 0xd8ab, 0x4141, 0x0a4d, 0x0070,
                   0xe898, 0x7779, 0x4079, 0x8cc7, 0xfe73, 0x2b6f, 0x6cee, 0x5203};
constexpr Fe kD2 = {0xf159, 0x26b2, 0x9b94, 0xebd6, 0xb156, 0x8283, 0x149a, 0x00e0,
                    0xd130, 0xeef3, 0x80f2, 0x198e, 0xfce7, 0x56df, 0xd9dc, 0x2406};
constexpr Fe kBaseX = {0xd51a, 0x8f25, 0x2d60, 0xc956, 0xa7b2, 0x9525, 0xc760, 0x692c,
                       0xdc5c, 0xfdd6, 0xe231, 0xc0a4, 0x53fe, 0xcd6e, 0x36d3, 0x2169};
constexpr Fe kBaseY = {0x6658, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
                       0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666};
constexpr Fe kSqrtM1 = {0xa0b0, 0x4a0e, 0x1b27, 0xc4ee, 0xe478, 0xad2f, 0x1806, 0x2f43,
                        0xd7a7, 0x3dfb, 0x0099, 0x2b4d, 0xdf0b, 0x4fc1, 0x2480, 0x2b83};

// Group order L = 2^252 + 27742317777372353535851937790883648493, LE bytes.
constexpr u8 kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                       0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                       0,    0,    0,    0,    0,    0,    0,    0,
                       0,    0,    0,    0,    0,    0,    0,    0x10};

void car25519(Fe& o) {
  for (int i = 0; i < 16; ++i) {
    o[i] += i64{1} << 16;
    const i64 c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

/// Constant-time conditional swap: b must be 0 or 1.
void sel25519(Fe& p, Fe& q, i64 b) {
  const i64 c = ~(b - 1);
  for (int i = 0; i < 16; ++i) {
    const i64 t = c & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void pack25519(u8* o, const Fe& n) {
  Fe t = n;
  car25519(t);
  car25519(t);
  car25519(t);
  for (int j = 0; j < 2; ++j) {
    Fe m;
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    const i64 b = (m[15] >> 16) & 1;
    m[14] &= 0xffff;
    sel25519(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    o[2 * i] = static_cast<u8>(t[i] & 0xff);
    o[2 * i + 1] = static_cast<u8>(t[i] >> 8);
  }
}

bool eq25519(const Fe& a, const Fe& b) {
  u8 c[32], d[32];
  pack25519(c, a);
  pack25519(d, b);
  return std::memcmp(c, d, 32) == 0;
}

u8 par25519(const Fe& a) {
  u8 d[32];
  pack25519(d, a);
  return d[0] & 1;
}

void unpack25519(Fe& o, const u8* n) {
  for (int i = 0; i < 16; ++i) o[i] = n[2 * i] + (static_cast<i64>(n[2 * i + 1]) << 8);
  o[15] &= 0x7fff;
}

void fe_add(Fe& o, const Fe& a, const Fe& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void fe_sub(Fe& o, const Fe& a, const Fe& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void fe_mul(Fe& o, const Fe& a, const Fe& b) {
  i64 t[31] = {};
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  }
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  car25519(o);
  car25519(o);
}

void fe_sqr(Fe& o, const Fe& a) { fe_mul(o, a, a); }

void fe_inv(Fe& o, const Fe& in) {
  Fe c = in;
  for (int a = 253; a >= 0; --a) {
    fe_sqr(c, c);
    if (a != 2 && a != 4) fe_mul(c, c, in);
  }
  o = c;
}

/// c = in^((p-5)/8), the square-root helper of point decompression.
void pow2523(Fe& o, const Fe& in) {
  Fe c = in;
  for (int a = 250; a >= 0; --a) {
    fe_sqr(c, c);
    if (a != 1) fe_mul(c, c, in);
  }
  o = c;
}

// --- Group arithmetic: extended twisted-Edwards coordinates -----------------

using Point = std::array<Fe, 4>;  ///< (X, Y, Z, T) with T = XY/Z

const Point kIdentity = {kGf0, kGf1, kGf1, kGf0};

/// p += q (the complete a=-1 addition law; also correct for p == q).
void point_add(Point& p, const Point& q) {
  Fe a, b, c, d, t, e, f, g, h;
  fe_sub(a, p[1], p[0]);
  fe_sub(t, q[1], q[0]);
  fe_mul(a, a, t);
  fe_add(b, p[0], p[1]);
  fe_add(t, q[0], q[1]);
  fe_mul(b, b, t);
  fe_mul(c, p[3], q[3]);
  fe_mul(c, c, kD2);
  fe_mul(d, p[2], q[2]);
  fe_add(d, d, d);
  fe_sub(e, b, a);
  fe_sub(f, d, c);
  fe_add(g, d, c);
  fe_add(h, b, a);
  fe_mul(p[0], e, f);
  fe_mul(p[1], h, g);
  fe_mul(p[2], g, f);
  fe_mul(p[3], e, h);
}

void point_cswap(Point& p, Point& q, i64 b) {
  for (int i = 0; i < 4; ++i) sel25519(p[i], q[i], b);
}

void point_pack(u8* r, const Point& p) {
  Fe tx, ty, zi;
  fe_inv(zi, p[2]);
  fe_mul(tx, p[0], zi);
  fe_mul(ty, p[1], zi);
  pack25519(r, ty);
  r[31] ^= static_cast<u8>(par25519(tx) << 7);
}

/// Decompress `n` into -P (x negated; the form verification consumes).
/// False iff `n` is not the encoding of a curve point.
bool point_unpack_neg(Point& r, const u8* n) {
  Fe t, chk, num, den, den2, den4, den6;
  r[2] = kGf1;
  unpack25519(r[1], n);
  fe_sqr(num, r[1]);
  fe_mul(den, num, kD);
  fe_sub(num, num, r[2]);
  fe_add(den, r[2], den);

  fe_sqr(den2, den);
  fe_sqr(den4, den2);
  fe_mul(den6, den4, den2);
  fe_mul(t, den6, num);
  fe_mul(t, t, den);

  pow2523(t, t);
  fe_mul(t, t, num);
  fe_mul(t, t, den);
  fe_mul(t, t, den);
  fe_mul(r[0], t, den);

  fe_sqr(chk, r[0]);
  fe_mul(chk, chk, den);
  if (!eq25519(chk, num)) fe_mul(r[0], r[0], kSqrtM1);

  fe_sqr(chk, r[0]);
  fe_mul(chk, chk, den);
  if (!eq25519(chk, num)) return false;

  if (par25519(r[0]) == (n[31] >> 7)) fe_sub(r[0], kGf0, r[0]);

  fe_mul(r[3], r[0], r[1]);
  return true;
}

/// p = s·q, constant-time conditional-swap ladder (secret scalars).
void scalarmult_ct(Point& p, Point& q, const u8* s) {
  p = kIdentity;
  for (int i = 255; i >= 0; --i) {
    const i64 b = (s[i / 8] >> (i & 7)) & 1;
    point_cswap(p, q, b);
    point_add(q, p);
    point_add(p, p);
    point_cswap(p, q, b);
  }
}

/// p = s·q over the low `bits` bits of s, variable-time 4-bit windows
/// (public scalars only: verification). ~1.5x the ladder's speed at 256
/// bits, 2x again for the 128-bit batch coefficients.
void scalarmult_vartime(Point& p, const Point& q, const u8* s, int bits) {
  Point table[16];
  table[0] = kIdentity;
  table[1] = q;
  for (int i = 2; i < 16; ++i) {
    table[i] = table[i - 1];
    point_add(table[i], q);
  }
  p = kIdentity;
  const int nibbles = (bits + 3) / 4;
  for (int i = nibbles - 1; i >= 0; --i) {
    for (int d = 0; d < 4; ++d) point_add(p, p);
    const u8 nib = (s[i / 2] >> (4 * (i & 1))) & 0xf;
    if (nib != 0) point_add(p, table[nib]);
  }
}

Point base_point() {
  Point b;
  b[0] = kBaseX;
  b[1] = kBaseY;
  b[2] = kGf1;
  fe_mul(b[3], kBaseX, kBaseY);
  return b;
}

void scalarbase_ct(Point& p, const u8* s) {
  Point q = base_point();
  scalarmult_ct(p, q, s);
}

void scalarbase_vartime(Point& p, const u8* s) {
  const Point q = base_point();
  scalarmult_vartime(p, q, s, 256);
}

// --- Scalar arithmetic mod L ------------------------------------------------

/// r = x mod L, for x given as 64 limbs of (possibly large) byte products.
void modL(u8* r, i64 x[64]) {
  i64 carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * kL[j - (i - 32)];
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * kL[j];
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * kL[j];
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<u8>(x[i] & 255);
  }
}

/// Reduce a 64-byte hash into its first 32 bytes mod L.
void reduce64(u8* r) {
  i64 x[64];
  for (int i = 0; i < 64; ++i) x[i] = r[i];
  for (int i = 0; i < 64; ++i) r[i] = 0;
  modL(r, x);
}

/// s < L (little-endian compare): rejects non-canonical (malleable) scalars.
bool scalar_canonical(const u8* s) {
  for (int i = 31; i >= 0; --i) {
    if (s[i] < kL[i]) return true;
    if (s[i] > kL[i]) return false;
  }
  return false;  // s == L
}

Digest64 challenge(const u8* r_bytes, const PublicKey& pk, BytesView message) {
  Sha512 h;
  h.update(BytesView(r_bytes, 32));
  h.update(BytesView(pk.data(), pk.size()));
  h.update(message);
  Digest64 k = h.finish();
  reduce64(k.data());
  return k;
}

}  // namespace

KeyPair keypair_from_seed(const Seed& seed) {
  Digest64 h = sha512(BytesView(seed.data(), seed.size()));
  h[0] &= 248;
  h[31] &= 127;
  h[31] |= 64;
  Point p;
  scalarbase_ct(p, h.data());
  KeyPair kp;
  kp.seed = seed;
  point_pack(kp.public_key.data(), p);
  return kp;
}

Signature sign(const KeyPair& kp, BytesView message) {
  Digest64 h = sha512(BytesView(kp.seed.data(), kp.seed.size()));
  h[0] &= 248;
  h[31] &= 127;
  h[31] |= 64;  // h[0..32) = clamped secret scalar d, h[32..64) = prefix

  Sha512 hasher;
  hasher.update(BytesView(h.data() + 32, 32));
  hasher.update(message);
  Digest64 r = hasher.finish();
  reduce64(r.data());

  Point p;
  scalarbase_ct(p, r.data());
  Signature sig{};
  point_pack(sig.data(), p);

  const Digest64 k = challenge(sig.data(), kp.public_key, message);

  i64 x[64] = {};
  for (int i = 0; i < 32; ++i) x[i] = r[i];
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      x[i + j] += static_cast<i64>(k[i]) * h[j];  // s = r + H(R,A,M)·d mod L
    }
  }
  modL(sig.data() + 32, x);
  return sig;
}

bool verify(const PublicKey& pk, BytesView message, const Signature& sig) {
  if (!scalar_canonical(sig.data() + 32)) return false;
  Point minus_a;
  if (!point_unpack_neg(minus_a, pk.data())) return false;

  const Digest64 k = challenge(sig.data(), pk, message);

  Point p;
  scalarmult_vartime(p, minus_a, k.data(), 256);  // p = H(R,A,M)·(-A)
  Point sb;
  scalarbase_vartime(sb, sig.data() + 32);        // s·B
  point_add(p, sb);                               // p = s·B - H(R,A,M)·A

  u8 t[32];
  point_pack(t, p);
  return std::memcmp(sig.data(), t, 32) == 0;
}

bool verify_batch(std::span<const BatchItem> items, Rng& rng) {
  if (items.empty()) return true;

  // Accumulate sum z_i·(-R_i) + sum (z_i·h_i mod L)·(-A_i) into `acc` and
  // sum z_i·s_i into byte-product limbs; the batch passes iff adding
  // (sum z_i·s_i)·B lands back on the identity.
  i64 s_sum[64] = {};
  Point acc = kIdentity;

  for (const BatchItem& item : items) {
    const u8* sig = item.signature->data();
    if (!scalar_canonical(sig + 32)) return false;
    Point minus_a, minus_r;
    if (!point_unpack_neg(minus_a, item.public_key->data())) return false;
    if (!point_unpack_neg(minus_r, sig)) return false;

    u8 z[16];
    do {
      std::uint64_t lo = rng.next_u64(), hi = rng.next_u64();
      for (int i = 0; i < 8; ++i) {
        z[i] = static_cast<u8>(lo >> (8 * i));
        z[8 + i] = static_cast<u8>(hi >> (8 * i));
      }
    } while (std::all_of(z, z + 16, [](u8 b) { return b == 0; }));

    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 32; ++j) {
        s_sum[i + j] += static_cast<i64>(z[i]) * sig[32 + j];
      }
    }

    const Digest64 h = challenge(sig, *item.public_key, item.message);
    i64 zh[64] = {};
    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 32; ++j) {
        zh[i + j] += static_cast<i64>(z[i]) * h[j];
      }
    }
    u8 w[32];
    modL(w, zh);

    Point t;
    scalarmult_vartime(t, minus_r, z, 128);  // z_i·(-R_i): half-length scalar
    point_add(acc, t);
    scalarmult_vartime(t, minus_a, w, 256);  // (z_i·h_i)·(-A_i)
    point_add(acc, t);
  }

  u8 s_total[32];
  modL(s_total, s_sum);
  Point sb;
  scalarbase_vartime(sb, s_total);
  point_add(acc, sb);

  u8 t[32];
  point_pack(t, acc);
  if (t[0] != 1) return false;  // identity encodes as 0x01 then 31 zero bytes
  for (int i = 1; i < 32; ++i) {
    if (t[i] != 0) return false;
  }
  return true;
}

}  // namespace dauct::crypto::ed25519
