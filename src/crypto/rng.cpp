#include "crypto/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace dauct::crypto {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

dauct::Money Rng::next_money(dauct::Money lo, dauct::Money hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi.micros() - lo.micros()) + 1;
  return dauct::Money::from_micros(lo.micros() +
                                   static_cast<std::int64_t>(next_below(span)));
}

dauct::Money Rng::next_money_positive(dauct::Money hi) {
  assert(hi > dauct::kZeroMoney);
  return next_money(dauct::Money::from_micros(1), hi);
}

double Rng::next_exponential(double lambda) {
  assert(lambda > 0);
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999999999;
  return -std::log1p(-u) / lambda;
}

Rng Rng::fork(std::uint64_t stream) const {
  SplitMix64 sm(s_[0] ^ (s_[3] * 0x9e3779b97f4a7c15ULL) ^ stream);
  Rng out;
  for (auto& s : out.s_) s = sm.next();
  if ((out.s_[0] | out.s_[1] | out.s_[2] | out.s_[3]) == 0) out.s_[0] = 1;
  return out;
}

}  // namespace dauct::crypto
