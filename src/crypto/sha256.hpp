// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: hash-based commitments in the common coin (Abraham–Dolev–Halpern
// commit–reveal scheme), digest-based cross-validation of broadcast values
// (bid agreement echoes, input validation, data transfer, output agreement),
// and for deriving per-instance domain-separation tags.
//
// Hot path: update() streams whole blocks straight out of the caller's
// buffer (no staging copy; only sub-block tails are buffered) and hands all
// of them to one multi-block compression call. On x86-64 with the SHA
// extensions, that call is hardware-accelerated (SHA-NI intrinsics, selected
// once at startup by CPUID); everywhere else a portable scalar compressor
// runs. Both produce identical FIPS 180-4 digests — required, since
// providers on heterogeneous hosts cross-validate by digest equality.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dauct::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called any number of times.
  Sha256& update(BytesView data);
  Sha256& update(std::string_view data);

  /// Finalize and return the digest. The hasher must not be reused afterwards
  /// without calling reset().
  Digest finish();

  /// Reset to the initial state.
  void reset();

 private:
  void compress_blocks(const std::uint8_t* data, std::size_t blocks);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// One-shot hash.
Digest sha256(BytesView data);
Digest sha256(std::string_view data);

/// One-shot hash forced through the portable scalar compressor, bypassing
/// the CPU dispatch. The pre-optimization reference: equivalence tests check
/// it agrees with sha256() on the running host, and the perf suite benches
/// the hardware path against it.
Digest sha256_portable(BytesView data);

/// Digest as Bytes (convenience for wire payloads).
Bytes digest_bytes(const Digest& d);

/// Hex rendering of a digest.
std::string digest_hex(const Digest& d);

}  // namespace dauct::crypto
