// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: hash-based commitments in the common coin (Abraham–Dolev–Halpern
// commit–reveal scheme), digest-based cross-validation of broadcast values
// (bid agreement echoes, input validation, data transfer, output agreement),
// and for deriving per-instance domain-separation tags.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dauct::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called any number of times.
  Sha256& update(BytesView data);
  Sha256& update(std::string_view data);

  /// Finalize and return the digest. The hasher must not be reused afterwards
  /// without calling reset().
  Digest finish();

  /// Reset to the initial state.
  void reset();

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// One-shot hash.
Digest sha256(BytesView data);
Digest sha256(std::string_view data);

/// Digest as Bytes (convenience for wire payloads).
Bytes digest_bytes(const Digest& d);

/// Hex rendering of a digest.
std::string digest_hex(const Digest& d);

}  // namespace dauct::crypto
