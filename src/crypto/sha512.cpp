#include "crypto/sha512.hpp"

#include <cstring>

namespace dauct::crypto {

namespace {

// First 64 bits of the fractional parts of the cube roots of the first 80
// primes (FIPS 180-4 §4.2.3).
constexpr std::uint64_t kK[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full, 0xe9b5dba58189dbbcull,
    0x3956c25bf348b538ull, 0x59f111f1b605d019ull, 0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull,
    0xd807aa98a3030242ull, 0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull, 0xc19bf174cf692694ull,
    0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull, 0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull,
    0x2de92c6f592b0275ull, 0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full, 0xbf597fc7beef0ee4ull,
    0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull, 0x06ca6351e003826full, 0x142929670a0e6e70ull,
    0x27b70a8546d22ffcull, 0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull, 0x92722c851482353bull,
    0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull, 0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull,
    0xd192e819d6ef5218ull, 0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull, 0x34b0bcb5e19b48a8ull,
    0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull, 0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull,
    0x748f82ee5defb2fcull, 0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull, 0xc67178f2e372532bull,
    0xca273eceea26619cull, 0xd186b8c721c0c207ull, 0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull,
    0x06f067aa72176fbaull, 0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull, 0x431d67c49c100d4cull,
    0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull, 0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull,
};

constexpr std::uint64_t rotr(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

}  // namespace

Sha512::Sha512() { reset(); }

void Sha512::reset() {
  // First 64 bits of the fractional parts of the square roots of the first 8
  // primes (FIPS 180-4 §5.3.5).
  state_ = {0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
            0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
            0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull};
  len_lo_ = 0;
  buffer_len_ = 0;
}

void Sha512::compress(const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = 0;
    for (int b = 0; b < 8; ++b) w[i] = (w[i] << 8) | block[i * 8 + b];
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 =
        rotr(w[i - 15], 1) ^ rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 =
        rotr(w[i - 2], 19) ^ rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t S1 = rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + S1 + ch + kK[i] + w[i];
    const std::uint64_t S0 = rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = S0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
  state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
}

Sha512& Sha512::update(BytesView data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  len_lo_ += n;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(n, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == buffer_.size()) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (n >= 128) {
    compress(p);
    p += 128;
    n -= 128;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
  return *this;
}

Sha512& Sha512::update(std::string_view data) {
  return update(BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                          data.size()));
}

Digest64 Sha512::finish() {
  // Pad: 0x80, zeros, then the 128-bit bit length (high word always 0 here —
  // len_lo_ counts bytes, so the bit count fits 67 bits; we carry the top
  // 3 bits into the high word explicitly).
  const std::uint64_t bits_lo = len_lo_ << 3;
  const std::uint64_t bits_hi = len_lo_ >> 61;
  std::uint8_t pad[256] = {0x80};
  const std::size_t rem = buffer_len_;
  // Pad to 112 mod 128, then 16 length bytes.
  const std::size_t pad_len = (rem < 112 ? 112 - rem : 240 - rem);
  std::uint8_t len_bytes[16];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bits_hi >> (56 - 8 * i));
    len_bytes[8 + i] = static_cast<std::uint8_t>(bits_lo >> (56 - 8 * i));
  }
  const std::uint64_t saved_len = len_lo_;
  update(BytesView(pad, pad_len));
  update(BytesView(len_bytes, 16));
  len_lo_ = saved_len;  // padding does not count (irrelevant after finish)

  Digest64 out;
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<std::uint8_t>(state_[i] >> (56 - 8 * b));
    }
  }
  return out;
}

Digest64 sha512(BytesView data) { return Sha512().update(data).finish(); }

}  // namespace dauct::crypto
