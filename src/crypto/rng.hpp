// Deterministic pseudo-random number generation.
//
// Two generators are provided:
//  * SplitMix64 — a tiny stream generator used to seed / derive.
//  * Xoshiro256** — the main engine (Blackman & Vigna), fast and with good
//    statistical quality; deterministic across platforms so replicated
//    providers derive identical randomness from a shared seed (the common
//    coin outputs a seed; every provider expands it identically).
//
// The Rng interface also provides distribution transforms used by the paper's
// workloads and the common coin (uniform reals, uniform ints, exponential).
#pragma once

#include <cstdint>

#include "common/money.hpp"

namespace dauct::crypto {

/// SplitMix64: seed expander (Steele, Lea, Flood).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** deterministic PRNG.
class Rng {
 public:
  /// Seed via SplitMix64 expansion (never all-zero state).
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform in [lo, hi] as fixed-point Money. Requires lo <= hi.
  dauct::Money next_money(dauct::Money lo, dauct::Money hi);

  /// Uniform in (0, hi]: excludes zero (paper workloads use U(0,1]).
  dauct::Money next_money_positive(dauct::Money hi);

  /// Exponential with rate lambda (>0), as double.
  double next_exponential(double lambda);

  /// Fork an independent stream identified by `stream`. Deterministic:
  /// fork(s) of equal-state generators with the same `stream` are identical.
  Rng fork(std::uint64_t stream) const;

 private:
  Rng() = default;
  std::uint64_t s_[4] = {};
};

}  // namespace dauct::crypto
