#include "crypto/commitment.hpp"

namespace dauct::crypto {

namespace {
Digest commitment_digest(const Digest& tag, const Opening& opening) {
  std::uint8_t value_be[8];
  for (int i = 0; i < 8; ++i) {
    value_be[i] = static_cast<std::uint8_t>(opening.value >> (56 - 8 * i));
  }
  Sha256 h;
  h.update(BytesView(tag.data(), tag.size()))
      .update(BytesView(value_be, 8))
      .update(BytesView(opening.nonce.data(), opening.nonce.size()));
  return h.finish();
}
}  // namespace

std::pair<Commitment, Opening> commit(const Digest& tag, std::uint64_t value, Rng& rng) {
  Opening opening;
  opening.value = value;
  for (std::size_t i = 0; i < opening.nonce.size(); i += 8) {
    const std::uint64_t r = rng.next_u64();
    for (std::size_t j = 0; j < 8 && i + j < opening.nonce.size(); ++j) {
      opening.nonce[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
    }
  }
  Commitment c{commitment_digest(tag, opening)};
  return {c, opening};
}

bool verify(const Digest& tag, const Commitment& commitment, const Opening& opening) {
  const Digest expected = commitment_digest(tag, opening);
  return ct_equal(BytesView(expected.data(), expected.size()),
                  BytesView(commitment.digest.data(), commitment.digest.size()));
}

}  // namespace dauct::crypto
