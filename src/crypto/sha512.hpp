// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Used exclusively by the ed25519 signing layer (crypto/ed25519.hpp): the
// scheme hashes the secret seed, the nonce transcript, and the challenge
// transcript with SHA-512. Kept separate from sha256.hpp because the two
// share no state layout (64- vs 32-bit words) and the protocol's digest
// cross-validation stays SHA-256 everywhere.
//
// Portable scalar compressor only: signing and verification cost is dominated
// by curve arithmetic, not hashing, so there is no hardware dispatch here.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dauct::crypto {

/// A 64-byte SHA-512 digest.
using Digest64 = std::array<std::uint8_t, 64>;

/// Incremental SHA-512 hasher.
class Sha512 {
 public:
  Sha512();

  /// Absorb more input. May be called any number of times.
  Sha512& update(BytesView data);
  Sha512& update(std::string_view data);

  /// Finalize and return the digest. The hasher must not be reused afterwards
  /// without calling reset().
  Digest64 finish();

  /// Reset to the initial state.
  void reset();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::uint64_t len_lo_ = 0;  ///< message length in bytes (2^64 B is plenty)
  std::array<std::uint8_t, 128> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// One-shot hash.
Digest64 sha512(BytesView data);

}  // namespace dauct::crypto
