// Hash-based commitment scheme for the common coin.
//
// The common-coin block (Abraham–Dolev–Halpern, DISC'13) has every provider
// commit to a random share before seeing anyone else's, then reveal. We
// implement commitments as C = SHA256(tag || value || nonce) with a 32-byte
// random nonce (hiding) — binding follows from collision resistance.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace dauct::crypto {

/// A commitment to a 64-bit value.
struct Commitment {
  Digest digest{};
};

/// The opening: value plus blinding nonce.
struct Opening {
  std::uint64_t value = 0;
  std::array<std::uint8_t, 32> nonce{};
};

/// Commit to `value` under a domain-separation `tag`, drawing the blinding
/// nonce from `rng`. Returns the commitment and the opening (kept secret
/// until the reveal round).
std::pair<Commitment, Opening> commit(const Digest& tag, std::uint64_t value, Rng& rng);

/// Verify that `opening` opens `commitment` under `tag`.
bool verify(const Digest& tag, const Commitment& commitment, const Opening& opening);

}  // namespace dauct::crypto
