// Full distributed auctioneer over real TCP loopback sockets.
//
// Every provider is an OS thread with its own listening socket; messages are
// length-prefixed frames; the client submits bids over TCP and collects each
// provider's result — the deployment shape of the paper's Guifi prototype,
// in one process.
//
//   build/examples/tcp_cluster [base_port]
#include <cstdio>
#include <cstdlib>

#include "auction/double_auction.hpp"
#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "runtime/tcp_runtime.hpp"

int main(int argc, char** argv) {
  using namespace dauct;

  crypto::Rng rng(31337);
  const auction::AuctionInstance market =
      auction::generate(auction::double_auction_workload(20, 4), rng);

  core::AuctioneerSpec spec;
  spec.m = 4;
  spec.k = 1;
  spec.num_bidders = 20;
  core::DistributedAuctioneer auctioneer(
      spec, std::make_shared<core::DoubleAuctionAdapter>());

  runtime::TcpRunConfig cfg;
  if (argc > 1) cfg.base_port = static_cast<std::uint16_t>(std::atoi(argv[1]));

  std::printf("starting 4 providers + 1 client on 127.0.0.1 ...\n");
  const auto run = runtime::TcpRuntime(cfg).run_distributed(auctioneer, market);
  std::printf("ports %u..%u, wall time %.1f ms\n", run.base_port,
              run.base_port + 4,
              std::chrono::duration<double, std::milli>(run.wall_time).count());

  if (run.timed_out || !run.global_outcome.ok()) {
    std::printf("run failed: %s\n",
                run.timed_out
                    ? "timeout"
                    : abort_reason_name(run.global_outcome.bottom().reason));
    return 1;
  }

  // Verify against the trusted-auctioneer reference.
  const auto reference = auction::run_double_auction(market);
  const bool matches = run.global_outcome.value() == reference;
  std::printf("all 4 providers agreed on (x, p); matches trusted reference: %s\n",
              matches ? "yes" : "NO");

  const auto& result = run.global_outcome.value();
  std::printf("allocated %s bandwidth units across %zu reservations; "
              "users paid %s, providers received %s\n",
              result.allocation.total().str().c_str(),
              result.allocation.entries().size(),
              result.payments.total_paid().str().c_str(),
              result.payments.total_received().str().c_str());
  return matches ? 0 : 1;
}
