// Adversaries end to end: equivocating / silent / invalid bidders are
// absorbed by the bid agreement, while a colluding provider forging protocol
// messages is detected and collapses the auction to ⊥ (utility 0 for
// everyone — which is exactly why rational coalitions don't do it).
//
//   build/examples/adversarial_bidders
#include <cstdio>

#include "adversary/resilience_harness.hpp"
#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"

int main() {
  using namespace dauct;

  crypto::Rng rng(4242);
  const auction::AuctionInstance market =
      auction::generate(auction::double_auction_workload(12, 5), rng);

  core::AuctioneerSpec spec;
  spec.m = 5;
  spec.k = 2;
  spec.num_bidders = 12;
  core::DistributedAuctioneer auctioneer(
      spec, std::make_shared<core::DoubleAuctionAdapter>());

  // --- Part 1: misbehaving bidders -------------------------------------
  std::printf("== misbehaving bidders ==\n");
  runtime::SimRunConfig cfg;
  cfg.bidder_script[2] = adversary::equivocating_bidder(/*split=*/2);
  cfg.bidder_script[5] = adversary::silent_bidder();
  cfg.bidder_script[7] = adversary::invalid_bidder();

  const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, market);
  if (run.global_outcome.ok()) {
    const auto& result = run.global_outcome.value();
    std::printf("auction completed despite bidder misbehaviour (%s virtual)\n",
                sim::format_time(run.makespan).c_str());
    std::printf("  bidder 2 (equivocated): majority view won, allocated %s\n",
                result.allocation.allocated_to(2).str().c_str());
    std::printf("  bidder 5 (silent):      neutral bid, allocated %s\n",
                result.allocation.allocated_to(5).str().c_str());
    std::printf("  bidder 7 (invalid bid): neutral bid, allocated %s\n",
                result.allocation.allocated_to(7).str().c_str());
  } else {
    std::printf("unexpected abort: %s\n",
                abort_reason_name(run.global_outcome.bottom().reason));
  }

  // --- Part 2: a colluding provider coalition ---------------------------
  std::printf("\n== colluding providers (coalition {1, 3}, k = 2) ==\n");
  const std::vector<NodeId> coalition = {1, 3};
  struct Attack {
    const char* what;
    std::shared_ptr<adversary::DeviationStrategy> strategy;
  };
  const std::vector<Attack> attacks = {
      {"forge output digest", adversary::forge_output_digest(coalition)},
      {"corrupt coin reveal", adversary::corrupt_coin_reveal()},
      {"equivocate consensus votes", adversary::equivocate_votes()},
  };
  for (const auto& attack : attacks) {
    runtime::SimRunConfig base;
    base.seed = 99;
    const auto report = adversary::measure_deviation(auctioneer, market, base,
                                                     coalition, attack.strategy);
    std::printf("  %-28s honest-utility=%s  deviant-utility=%s  %s\n",
                attack.what, report.honest_utility.str().c_str(),
                report.deviant_utility.str().c_str(),
                report.deviant_ok
                    ? "NOT detected (!)"
                    : ("detected -> outcome \xE2\x8A\xA5 (" +
                       std::string(abort_reason_name(report.deviant_abort_reason)) +
                       ")")
                          .c_str());
  }
  std::printf("\nno deviation pays: detection zeroes the coalition's utility.\n");
  return 0;
}
