// Quickstart: run a distributed double auction among 5 providers, no trusted
// auctioneer, in a few lines.
//
//   build/examples/quickstart
#include <cstdio>

#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"

int main() {
  using namespace dauct;

  // 1. A market: 10 users bidding for bandwidth at 5 gateway providers
  //    (the paper's workload distributions).
  crypto::Rng rng(2024);
  const auction::AuctionInstance market =
      auction::generate(auction::double_auction_workload(10, 5), rng);

  // 2. The distributed auctioneer: 5 providers simulate the trusted
  //    auctioneer, tolerating coalitions of up to k = 2 (m > 2k).
  core::AuctioneerSpec spec;
  spec.m = 5;
  spec.k = 2;
  spec.num_bidders = 10;
  core::DistributedAuctioneer auctioneer(
      spec, std::make_shared<core::DoubleAuctionAdapter>());

  // 3. Run it on the simulated community network.
  runtime::SimRuntime rt(runtime::SimRunConfig{});
  const auto run = rt.run_distributed(auctioneer, market);

  if (!run.global_outcome.ok()) {
    std::printf("auction aborted: %s\n",
                abort_reason_name(run.global_outcome.bottom().reason));
    return 1;
  }

  const auction::AuctionResult& result = run.global_outcome.value();
  std::printf("distributed double auction finished in %s (virtual),"
              " %llu messages, %llu bytes\n",
              sim::format_time(run.makespan).c_str(),
              static_cast<unsigned long long>(run.traffic.messages),
              static_cast<unsigned long long>(run.traffic.bytes));

  std::printf("\n%-8s %-10s %-10s %-12s %-10s\n", "user", "bid/unit", "demand",
              "allocated", "pays");
  for (const auto& bid : market.bids) {
    std::printf("u%-7u %-10s %-10s %-12s %-10s\n", bid.bidder,
                bid.unit_value.str().c_str(), bid.demand.str().c_str(),
                result.allocation.allocated_to(bid.bidder).str().c_str(),
                result.payments.user_payments[bid.bidder].str().c_str());
  }
  std::printf("\n%-8s %-10s %-10s %-12s %-10s\n", "gateway", "cost/unit",
              "capacity", "sold", "receives");
  for (const auto& ask : market.asks) {
    std::printf("p%-7u %-10s %-10s %-12s %-10s\n", ask.provider,
                ask.unit_cost.str().c_str(), ask.capacity.str().c_str(),
                result.allocation.allocated_at(ask.provider).str().c_str(),
                result.payments.provider_revenues[ask.provider].str().c_str());
  }
  std::printf("\nbudget: users paid %s, providers received %s (surplus %s)\n",
              result.payments.total_paid().str().c_str(),
              result.payments.total_received().str().c_str(),
              (result.payments.total_paid() - result.payments.total_received())
                  .str()
                  .c_str());
  return 0;
}
