// Community-network bandwidth reservation (the paper's case study, §5).
//
// Eight Guifi-style gateways with Internet uplink capacity; households
// without direct access bid for reservations. The standard (VCG) auction
// allocates each household to a single gateway, maximizing social welfare
// (1−ε)-approximately, with Clarke payments computed *in parallel* by
// provider groups. Shows the parallelism dividend by running the same
// market at p = 1, 2 and 4.
//
//   build/examples/community_bandwidth
#include <cstdio>

#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"

int main() {
  using namespace dauct;

  constexpr std::size_t kGateways = 8;
  constexpr std::size_t kHouseholds = 80;

  crypto::Rng rng(777);
  const auction::AuctionInstance market =
      auction::generate(auction::standard_auction_workload(kHouseholds, kGateways), rng);

  auction::StandardAuctionParams params;
  params.epsilon = 0.05;
  auto adapter = std::make_shared<core::StandardAuctionAdapter>(params);

  std::printf("community bandwidth reservation: %zu gateways, %zu households\n",
              kGateways, kHouseholds);
  std::printf("capacity is scarce (~quarter of households can win)\n\n");

  // Run at increasing resilience/parallelism trade-offs: k=3 → p=2 groups,
  // k=1 → p=4 groups. Same market, same outcome, different makespans.
  struct Config {
    std::size_t k;
  };
  double central_s = 0;
  {
    core::CentralizedAuctioneer trusted(adapter);
    runtime::SimRunConfig cfg;
    cfg.cost_mode = sim::CostMode::kMeasured;
    const auto run = runtime::SimRuntime(cfg).run_centralized(trusted, market);
    central_s = sim::to_seconds(run.makespan);
    std::printf("%-28s %8.4f s\n", "trusted auctioneer (p=1)", central_s);
  }
  for (const Config c : {Config{3}, Config{1}}) {
    core::AuctioneerSpec spec;
    spec.m = kGateways;
    spec.k = c.k;
    spec.num_bidders = kHouseholds;
    core::DistributedAuctioneer auctioneer(spec, adapter);
    runtime::SimRunConfig cfg;
    cfg.cost_mode = sim::CostMode::kMeasured;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, market);
    if (!run.global_outcome.ok()) {
      std::printf("run aborted: %s\n",
                  abort_reason_name(run.global_outcome.bottom().reason));
      return 1;
    }
    const double s = sim::to_seconds(run.makespan);
    std::printf("%-28s %8.4f s   (%.2fx vs trusted; tolerates %zu colluders)\n",
                ("distributed, p=" + std::to_string(auctioneer.parallelism()))
                    .c_str(),
                s, central_s / s, c.k);

    if (c.k == 1) {
      const auto& result = run.global_outcome.value();
      std::printf("\nwinning reservations (k=1 run):\n");
      std::printf("%-12s %-10s %-12s %-10s %-10s\n", "household", "gateway",
                  "bandwidth", "bid/unit", "pays");
      for (const auto& e : result.allocation.entries()) {
        std::printf("h%-11u g%-9u %-12s %-10s %-10s\n", e.bidder, e.provider,
                    e.amount.str().c_str(),
                    market.bids[e.bidder].unit_value.str().c_str(),
                    result.payments.user_payments[e.bidder].str().c_str());
      }
      Money welfare = auction::standard_auction_welfare(market, result.allocation);
      std::printf("\nsocial welfare: %s; payments are budget-balanced: %s == %s\n",
                  welfare.str().c_str(),
                  result.payments.total_paid().str().c_str(),
                  result.payments.total_received().str().c_str());
    }
  }
  return 0;
}
