#!/usr/bin/env python3
"""Compare a fresh BENCH_dauct.json against the committed baseline.

Per-op deltas for every benchmark present in both files, plus new/dropped
entries — rendered as a GitHub-flavoured markdown table so CI can append it
to the job summary. Warn-only by design: the shared CI vCPU is far too noisy
for a hard gate (see ROADMAP "Perf baseline"); the table is for humans (and
the committed baseline at the repo root is the durable record).

Usage:
  tools/bench_compare.py BASELINE.json FRESH.json [--threshold-pct 15]

Exit code is always 0 unless a file is missing/unparseable.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for rec in doc.get("benchmarks", []):
        runs[rec["name"]] = rec
    return runs, doc.get("speedups", {})


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} µs"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold-pct", type=float, default=15.0,
                    help="flag |delta| above this (cosmetic only; never fails)")
    args = ap.parse_args()

    try:
        base, base_speedups = load(args.baseline)
        fresh, fresh_speedups = load(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot load inputs: {e}", file=sys.stderr)
        return 1

    common = [n for n in base if n in fresh]
    added = [n for n in fresh if n not in base]
    dropped = [n for n in base if n not in fresh]

    print("### Perf trajectory vs committed baseline")
    print()
    print(f"{len(common)} benchmarks compared "
          f"({len(added)} new, {len(dropped)} dropped). "
          f"Deltas beyond ±{args.threshold_pct:.0f}% are flagged; "
          "this job is warn-only (noisy shared vCPU — trust ratios, "
          "re-measure locally before acting).")
    print()
    print("| benchmark | baseline | fresh | delta |")
    print("|---|---:|---:|---:|")
    flagged = 0
    for name in common:
        b, f = base[name]["ns_per_op"], fresh[name]["ns_per_op"]
        if b <= 0:
            continue
        pct = (f - b) / b * 100.0
        mark = ""
        if abs(pct) > args.threshold_pct:
            flagged += 1
            mark = " ⚠️" if pct > 0 else " 🚀"
        print(f"| `{name}` | {fmt_ns(b)} | {fmt_ns(f)} | {pct:+.1f}%{mark} |")
    for name in added:
        print(f"| `{name}` | — | {fmt_ns(fresh[name]['ns_per_op'])} | new |")
    for name in dropped:
        print(f"| `{name}` | {fmt_ns(base[name]['ns_per_op'])} | — | dropped |")

    if base_speedups or fresh_speedups:
        print()
        print("| ref→opt speedup | baseline | fresh |")
        print("|---|---:|---:|")
        for key in sorted(set(base_speedups) | set(fresh_speedups)):
            b = base_speedups.get(key)
            f = fresh_speedups.get(key)
            print(f"| `{key}` | {f'{b:.2f}×' if b else '—'} "
                  f"| {f'{f:.2f}×' if f else '—'} |")

    print()
    if flagged:
        print(f"_{flagged} benchmark(s) beyond the ±{args.threshold_pct:.0f}% "
              "noise band._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
