// dauct — command-line front end for the distributed auctioneer.
//
// Run an auction (synthetic workload or CSV market data) through the
// distributed protocol or the trusted-auctioneer baseline, on the simulated,
// threaded, or real-TCP runtime, and print the result as a report or CSV.
//
// Examples:
//   dauct_cli --auction double --users 50 --providers 5 --k 2
//   dauct_cli --auction standard --users 30 --providers 8 --k 1 --epsilon 0.1
//   dauct_cli --bids bids.csv --asks asks.csv --k 1 --csv
//   dauct_cli --auction double --users 20 --providers 4 --runtime tcp
//   dauct_cli --auction double --users 20 --providers 4 --centralized
//   dauct_cli --scenario scenarios/k_crash.scn
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "core/service_plane.hpp"
#include "runtime/scenario.hpp"
#include "runtime/service_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/tcp_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "serde/csv.hpp"

namespace {

using namespace dauct;

struct Options {
  std::string auction = "double";   // double | standard
  std::string runtime = "sim";      // sim | thread | tcp
  std::string latency = "community";  // zero | lan | community
  std::string mode = "value";       // value | bits | perbit
  std::size_t users = 20;
  std::size_t providers = 5;
  std::size_t k = 1;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  std::string bids_file;
  std::string asks_file;
  std::string scenario_file;
  bool centralized = false;
  bool csv_output = false;
  bool trace = false;
  bool help = false;
  /// Single-node tcp deployment: "" (off), a provider index, or "client".
  std::string tcp_node;
  std::uint16_t base_port = 0;
  std::string wal_dir;          ///< durable provider state (tcp single-node)
  std::uint64_t crash_after = 0;  ///< kill hook after N WAL message records
  net::ReliabilityConfig reliability;  // --reliable and friends (sim runtime)
  net::AuthConfig auth;                // --auth / --auth-batch (sim runtime)
  std::size_t instances = 1;       ///< --instances (sim runtime service plane)
  std::size_t pipeline_depth = 1;  ///< --pipeline-depth (needs instances > 1)
  /// Sim-only flags the user explicitly passed: the thread/TCP runtimes have
  /// no virtual-time timer facility (blocks/block.cpp), so reliability
  /// watchdogs and the signing layer would silently no-op there. We record
  /// each such flag and reject the combination instead of ignoring it.
  std::vector<std::string> sim_only_flags;
};

void print_usage() {
  std::printf(R"(usage: dauct_cli [options]

market (synthetic unless CSV files given):
  --auction double|standard   mechanism (default double)
  --users N                   number of bidders (default 20)
  --providers M               number of providers (default 5; must be > 2k)
  --seed S                    workload + protocol seed (default 1)
  --bids FILE.csv             bids from CSV: bidder,unit_value,demand
  --asks FILE.csv             asks from CSV: provider,unit_cost,capacity

protocol:
  --k K                       coalition resilience bound (default 1)
  --epsilon E                 (1-eps) welfare approximation (standard auction)
  --mode value|bits|perbit    bid agreement encoding (default value)
  --centralized               run the trusted-auctioneer baseline instead

execution:
  --runtime sim|thread|tcp    runtime (default sim: virtual-time simulation)
  --latency zero|lan|community  sim network model (default community)
  --trace                     print the sim message trace (first 60 entries)

single-node tcp deployment (one process per node; see docs/DURABILITY.md):
  --tcp-node J|client         run ONE node of a multi-process tcp cluster:
                              provider J (0-based) or the client. All
                              processes must share --seed and --base-port.
                              Requires --runtime tcp.
  --base-port P               first tcp port (node j listens on P+j)
  --wal-dir DIR               journal provider state to DIR/provider-J.wal;
                              a restarted provider replays its log, rejoins,
                              and completes. Refuses a WAL from a different
                              run seed or node. Providers only.
  --crash-after N             kill hook: _exit(137) right after the Nth WAL
                              message record commits (requires --wal-dir)

reliability (sim runtime only; ack/retransmit layer, see docs/RELIABILITY.md):
  --reliable                  enable the reliable-delivery layer
  --retransmit-delay-ms D     backoff base before the first retransmit (default 8)
  --max-retries N             retransmits before giving up on a peer (default 6)
  --round-timeout-ms D        round liveness watchdog period; 0 disables
                              (default 12)

authentication (sim runtime only; ed25519 signing layer, see docs/AUTH.md):
  --auth                      sign every provider frame, verify on delivery,
                              and turn equivocation into a transferable proof
  --auth-batch                verify each round's signatures as one batch
                              (implies --auth; forgeries abort instead of
                              being rejected — see docs/AUTH.md)

service plane (sim runtime only; multi-auction multiplexing, see docs/SERVICE.md):
  --instances N               clear N auction instances over ONE shared
                              transport stack; instance i's workload is
                              generated from derive_instance_seed(seed, i),
                              so each instance matches a standalone run at
                              its derived seed
  --pipeline-depth D          concurrent-instance bound (default 1: strictly
                              sequential). Settling instance t launches
                              instance t+D in the same virtual instant.

the reliability, authentication, and service-plane layers need the sim
runtime's virtual-time timers; combining their flags with --runtime
thread|tcp is an error rather than a silent no-op.

scenario (deterministic fault injection; see docs/SCENARIOS.md):
  --scenario FILE.scn         run a declarative scenario (link faults, cuts,
                              partitions, crashes, deviations) on the sim
                              runtime and check its [expect] assertions;
                              exits 0 iff they hold (ignores flags above)

output:
  --csv                       machine-readable CSV instead of the report
  --help                      this text
)");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--centralized") {
      opt.centralized = true;
    } else if (arg == "--csv") {
      opt.csv_output = true;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--auction") {
      if (!(v = need_value(i))) return false;
      opt.auction = v;
    } else if (arg == "--runtime") {
      if (!(v = need_value(i))) return false;
      opt.runtime = v;
    } else if (arg == "--latency") {
      if (!(v = need_value(i))) return false;
      opt.latency = v;
    } else if (arg == "--mode") {
      if (!(v = need_value(i))) return false;
      opt.mode = v;
    } else if (arg == "--users") {
      if (!(v = need_value(i))) return false;
      opt.users = std::strtoul(v, nullptr, 10);
    } else if (arg == "--providers") {
      if (!(v = need_value(i))) return false;
      opt.providers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--k") {
      if (!(v = need_value(i))) return false;
      opt.k = std::strtoul(v, nullptr, 10);
    } else if (arg == "--epsilon") {
      if (!(v = need_value(i))) return false;
      opt.epsilon = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      if (!(v = need_value(i))) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--bids") {
      if (!(v = need_value(i))) return false;
      opt.bids_file = v;
    } else if (arg == "--asks") {
      if (!(v = need_value(i))) return false;
      opt.asks_file = v;
    } else if (arg == "--scenario") {
      if (!(v = need_value(i))) return false;
      opt.scenario_file = v;
    } else if (arg == "--tcp-node") {
      if (!(v = need_value(i))) return false;
      opt.tcp_node = v;
    } else if (arg == "--base-port") {
      if (!(v = need_value(i))) return false;
      opt.base_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--wal-dir") {
      if (!(v = need_value(i))) return false;
      opt.wal_dir = v;
    } else if (arg == "--crash-after") {
      if (!(v = need_value(i))) return false;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (*v == '\0' || *v == '-' || end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "--crash-after must be a positive integer (got %s)\n", v);
        return false;
      }
      opt.crash_after = n;
    } else if (arg == "--reliable") {
      opt.reliability.enable = true;
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--auth") {
      opt.auth.enable = true;
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--auth-batch") {
      opt.auth.enable = true;
      opt.auth.batch_verify = true;
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--instances") {
      if (!(v = need_value(i))) return false;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (*v == '\0' || *v == '-' || end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "--instances must be a positive integer (got %s)\n", v);
        return false;
      }
      opt.instances = static_cast<std::size_t>(n);
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--pipeline-depth") {
      if (!(v = need_value(i))) return false;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (*v == '\0' || *v == '-' || end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "--pipeline-depth must be a positive integer (got %s)\n", v);
        return false;
      }
      opt.pipeline_depth = static_cast<std::size_t>(n);
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--retransmit-delay-ms") {
      if (!(v = need_value(i))) return false;
      const double ms = std::strtod(v, nullptr);
      if (!(ms > 0)) {  // 0 would burn every retry at the send instant
        std::fprintf(stderr, "--retransmit-delay-ms must be > 0 (got %s)\n", v);
        return false;
      }
      opt.reliability.retransmit_delay = static_cast<sim::SimTime>(ms * 1e6);
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--max-retries") {
      if (!(v = need_value(i))) return false;
      char* end = nullptr;
      const unsigned long n = std::strtoul(v, &end, 10);
      if (*v == '\0' || *v == '-' || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "--max-retries must be a non-negative integer (got %s)\n", v);
        return false;
      }
      opt.reliability.max_retries = n;
      opt.sim_only_flags.push_back(arg);
    } else if (arg == "--round-timeout-ms") {
      if (!(v = need_value(i))) return false;
      const double ms = std::strtod(v, nullptr);
      if (ms < 0) {  // 0 is the documented "watchdogs off" value
        std::fprintf(stderr, "--round-timeout-ms must be >= 0 (got %s)\n", v);
        return false;
      }
      opt.reliability.round_timeout = static_cast<sim::SimTime>(ms * 1e6);
      opt.sim_only_flags.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int fail(const std::string& message) {
  std::fprintf(stderr, "dauct_cli: %s\n", message.c_str());
  return 1;
}

void print_report(const auction::AuctionInstance& instance,
                  const auction::AuctionResult& result) {
  std::printf("%-8s %-11s %-11s %-12s %-11s\n", "user", "bid/unit", "demand",
              "allocated", "pays");
  for (const auto& bid : instance.bids) {
    std::printf("u%-7u %-11s %-11s %-12s %-11s\n", bid.bidder,
                bid.unit_value.str().c_str(), bid.demand.str().c_str(),
                result.allocation.allocated_to(bid.bidder).str().c_str(),
                result.payments.user_payments[bid.bidder].str().c_str());
  }
  std::printf("\n%-8s %-11s %-11s %-12s %-11s\n", "provider", "cost/unit",
              "capacity", "sold", "receives");
  for (const auto& ask : instance.asks) {
    std::printf("p%-7u %-11s %-11s %-12s %-11s\n", ask.provider,
                ask.unit_cost.str().c_str(), ask.capacity.str().c_str(),
                result.allocation.allocated_at(ask.provider).str().c_str(),
                result.payments.provider_revenues[ask.provider].str().c_str());
  }
  std::printf("\ntotals: paid %s, received %s\n",
              result.payments.total_paid().str().c_str(),
              result.payments.total_received().str().c_str());
}

/// Run a declarative .scn scenario and report the expectation verdicts.
/// Exit codes: 0 expectations hold, 1 file/parse error, 3 violated.
int run_scenario_file(const std::string& path) {
  const auto text = read_file(path);
  if (!text) return fail("cannot read " + path);
  const auto parsed = runtime::parse_scenario(*text);
  if (!parsed.ok()) return fail(path + ": " + parsed.error);
  const runtime::Scenario& sc = *parsed.scenario;

  std::printf("# scenario: %s%s%s\n", sc.name.empty() ? path.c_str() : sc.name.c_str(),
              sc.description.empty() ? "" : " — ", sc.description.c_str());
  std::printf("# run: %s auction, n=%zu m=%zu k=%zu, seed=%llu, latency=%s; "
              "%zu link rule(s), %zu cut(s), %zu partition(s), %zu crash(es), "
              "%zu deviation(s)\n",
              sc.auction.c_str(), sc.users, sc.providers, sc.k,
              static_cast<unsigned long long>(sc.seed), sc.latency.c_str(),
              sc.faults.links.size(), sc.faults.cuts.size(),
              sc.faults.partitions.size(), sc.faults.crashes.size(),
              sc.deviations.size());

  const auto run = runtime::run_scenario(sc);
  const auto& r = run.run;
  if (r.global_outcome.ok()) {
    std::printf("outcome: (x, p\xE2\x83\x97) reached — result sha256 %s\n",
                run.result_digest.c_str());
  } else {
    std::printf("outcome: \xE2\x8A\xA5 (%s%s)\n",
                abort_reason_name(r.global_outcome.bottom().reason),
                r.stalled ? ", stalled" : "");
  }
  std::printf("makespan: %s virtual; traffic: %llu msgs, %llu bytes\n",
              sim::format_time(r.makespan).c_str(),
              static_cast<unsigned long long>(r.traffic.messages),
              static_cast<unsigned long long>(r.traffic.bytes));
  const auto& fs = r.fault_stats;
  std::printf("faults injected: %llu dropped (link %llu, cut %llu, partition "
              "%llu, crash %llu), %llu duplicated, %llu delayed\n",
              static_cast<unsigned long long>(fs.total_dropped()),
              static_cast<unsigned long long>(fs.link_dropped),
              static_cast<unsigned long long>(fs.cut_dropped),
              static_cast<unsigned long long>(fs.partition_dropped),
              static_cast<unsigned long long>(fs.crash_dropped),
              static_cast<unsigned long long>(fs.duplicated),
              static_cast<unsigned long long>(fs.delayed));
  if (sc.reliability.enable) {
    const auto& rs = r.reliability_stats;
    std::printf("reliability: %llu tracked, %llu retransmits, %llu acks sent, "
                "%llu acks received, %llu duplicates suppressed, "
                "%llu re-requests (%llu answered), %llu give-ups\n",
                static_cast<unsigned long long>(rs.tracked),
                static_cast<unsigned long long>(rs.retransmits),
                static_cast<unsigned long long>(rs.acks_sent),
                static_cast<unsigned long long>(rs.acks_received),
                static_cast<unsigned long long>(rs.duplicates_suppressed),
                static_cast<unsigned long long>(rs.rerequests_sent),
                static_cast<unsigned long long>(rs.rerequests_answered),
                static_cast<unsigned long long>(rs.give_ups));
  }
  if (sc.auth.enable) {
    const auto& as = r.auth_stats;
    std::printf("auth: %llu signed (%llu fan-out reuses), %llu verified eager, "
                "%llu batched (%llu batches), %llu bad-sig + %llu malformed "
                "rejected, %llu replays dropped, %llu equivocations\n",
                static_cast<unsigned long long>(as.signed_sends),
                static_cast<unsigned long long>(as.signed_reuses),
                static_cast<unsigned long long>(as.verified_eager),
                static_cast<unsigned long long>(as.verified_batched),
                static_cast<unsigned long long>(as.batches),
                static_cast<unsigned long long>(as.rejected_bad_sig),
                static_cast<unsigned long long>(as.rejected_malformed),
                static_cast<unsigned long long>(as.replays_dropped),
                static_cast<unsigned long long>(as.equivocations));
  }
  if (r.equivocation_proof) {
    std::printf("equivocation proof: provider p%u on topic '%s' "
                "(transferable; verified against the signer's public key)\n",
                r.equivocation_proof->signer, r.equivocation_proof->topic.c_str());
  }
  if (run.clean) {
    std::printf("fault-free twin: %s\n",
                run.clean->global_outcome.ok()
                    ? ("result sha256 " + run.clean_digest).c_str()
                    : "\xE2\x8A\xA5");
  }
  if (run.ok()) {
    std::printf("expectations: PASS\n");
    return 0;
  }
  for (const auto& f : run.failures) {
    std::printf("expectation FAILED: %s\n", f.c_str());
  }
  // Everything a bug report needs on one screen: the fault-decision RNG
  // stream the plan ran under, and the exact command that replays it (the
  // run is a pure function of the file, so the file is the repro).
  std::printf("fault-plan seed: %llu\n",
              static_cast<unsigned long long>(sc.faults.seed));
  std::printf("repro: dauct_cli --scenario %s\n", path.c_str());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 1;
  if (opt.help) {
    print_usage();
    return 0;
  }

  if (!opt.scenario_file.empty()) return run_scenario_file(opt.scenario_file);

  // Fail fast instead of silently no-opping: only the sim runtime wires the
  // reliability and signing layers into its endpoint chains (the thread/TCP
  // runtimes also lack the timer facility the watchdogs need).
  if (opt.runtime != "sim" && !opt.sim_only_flags.empty()) {
    return fail(opt.sim_only_flags.front() + " requires --runtime sim: the " +
                opt.runtime +
                " runtime does not wire the reliability/auth layers, so the "
                "flag would silently do nothing (see docs/RELIABILITY.md and "
                "docs/AUTH.md)");
  }

  // Service plane: fail fast on combinations the multiplexed run cannot
  // honor (one CSV market is one instance; the baseline is single-auction).
  if (opt.pipeline_depth > opt.instances) {
    return fail("--pipeline-depth must not exceed --instances (depth " +
                std::to_string(opt.pipeline_depth) + " > " +
                std::to_string(opt.instances) + " instances)");
  }
  if (opt.instances > 1 && opt.centralized) {
    return fail("--instances multiplexes the distributed protocol; drop "
                "--centralized");
  }
  if (opt.instances > 1 && (!opt.bids_file.empty() || !opt.asks_file.empty())) {
    return fail("--instances generates one synthetic workload per instance "
                "from the seed; a single CSV market cannot be multiplexed");
  }
  if (opt.instances > 1 && opt.csv_output) {
    return fail("--csv emits one market's allocation table; --instances "
                "prints the per-instance report instead");
  }

  // Single-node tcp deployment: fail fast on contradictory combinations
  // instead of silently ignoring a flag.
  if (!opt.tcp_node.empty() && opt.runtime != "tcp") {
    return fail("--tcp-node requires --runtime tcp");
  }
  if (!opt.tcp_node.empty() && opt.base_port == 0) {
    return fail("--tcp-node requires an explicit --base-port (every process "
                "of the cluster must agree on the port plan)");
  }
  if (!opt.tcp_node.empty() && opt.centralized) {
    return fail("--tcp-node runs the distributed protocol; drop --centralized");
  }
  if (!opt.wal_dir.empty() && opt.tcp_node.empty()) {
    return fail("--wal-dir requires --tcp-node (durable state is per "
                "provider process; see docs/DURABILITY.md)");
  }
  if (opt.tcp_node == "client" && !opt.wal_dir.empty()) {
    return fail("--wal-dir applies to providers; the client keeps no durable "
                "state");
  }
  if (opt.crash_after != 0 && opt.wal_dir.empty()) {
    return fail("--crash-after requires --wal-dir (the kill hook counts WAL "
                "message records)");
  }

  // --- Market -----------------------------------------------------------
  auction::AuctionInstance instance;
  if (!opt.bids_file.empty() || !opt.asks_file.empty()) {
    if (opt.bids_file.empty() || opt.asks_file.empty()) {
      return fail("--bids and --asks must be given together");
    }
    const auto bids_text = read_file(opt.bids_file);
    if (!bids_text) return fail("cannot read " + opt.bids_file);
    const auto asks_text = read_file(opt.asks_file);
    if (!asks_text) return fail("cannot read " + opt.asks_file);
    auto bids = serde::parse_bids_csv(*bids_text);
    if (!bids.ok()) return fail(bids.error);
    auto asks = serde::parse_asks_csv(*asks_text);
    if (!asks.ok()) return fail(asks.error);
    instance.bids = std::move(*bids.value);
    instance.asks = std::move(*asks.value);
    opt.users = instance.bids.size();
    opt.providers = instance.asks.size();
  } else {
    crypto::Rng rng(opt.seed);
    const auto params = opt.auction == "standard"
                            ? auction::standard_auction_workload(opt.users, opt.providers)
                            : auction::double_auction_workload(opt.users, opt.providers);
    instance = auction::generate(params, rng);
  }

  // --- Mechanism ---------------------------------------------------------
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (opt.auction == "double") {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  } else if (opt.auction == "standard") {
    auction::StandardAuctionParams params;
    params.epsilon = opt.epsilon;
    adapter = std::make_shared<core::StandardAuctionAdapter>(params);
  } else {
    return fail("unknown --auction '" + opt.auction + "'");
  }

  if (opt.centralized) {
    core::CentralizedAuctioneer trusted(adapter);
    runtime::SimRunConfig cfg;
    cfg.seed = opt.seed;
    cfg.cost_mode = sim::CostMode::kMeasured;
    const auto run = runtime::SimRuntime(cfg).run_centralized(trusted, instance);
    if (!run.global_outcome.ok()) return fail("centralized run did not complete");
    std::printf("# trusted auctioneer, %s virtual\n",
                sim::format_time(run.makespan).c_str());
    if (opt.csv_output) {
      std::fputs(serde::result_to_csv(instance, run.global_outcome.value()).c_str(),
                 stdout);
    } else {
      print_report(instance, run.global_outcome.value());
    }
    return 0;
  }

  core::AuctioneerSpec spec;
  spec.m = opt.providers;
  spec.k = opt.k;
  spec.num_bidders = instance.bids.size();
  if (opt.mode == "bits") {
    spec.agreement_mode = blocks::AgreementMode::kBitStream;
  } else if (opt.mode == "perbit") {
    spec.agreement_mode = blocks::AgreementMode::kPerBitMessages;
  } else if (opt.mode != "value") {
    return fail("unknown --mode '" + opt.mode + "'");
  }

  std::unique_ptr<core::DistributedAuctioneer> auctioneer;
  try {
    auctioneer = std::make_unique<core::DistributedAuctioneer>(spec, adapter);
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }

  // --- Execution ---------------------------------------------------------
  auction::AuctionOutcome outcome{Bottom{}};
  std::string timing;
  std::string abort_extra;
  if (opt.runtime == "sim") {
    runtime::SimRunConfig cfg;
    cfg.seed = opt.seed;
    cfg.cost_mode = sim::CostMode::kMeasured;
    cfg.reliability = opt.reliability;
    cfg.auth = opt.auth;
    if (opt.latency == "zero") {
      cfg.latency = sim::LatencyModel::zero();
    } else if (opt.latency == "lan") {
      cfg.latency = sim::LatencyModel::lan();
    } else if (opt.latency != "community") {
      return fail("unknown --latency '" + opt.latency + "'");
    }
    if (opt.instances > 1) {
      // --- Service plane: N instances over one shared transport ----------
      runtime::ServiceRunConfig svc;
      svc.base = cfg;
      svc.instances = opt.instances;
      svc.pipeline_depth = opt.pipeline_depth;
      std::vector<auction::AuctionInstance> workloads;
      workloads.reserve(opt.instances);
      for (std::size_t t = 0; t < opt.instances; ++t) {
        crypto::Rng rng(core::derive_instance_seed(opt.seed, t));
        const auto params =
            opt.auction == "standard"
                ? auction::standard_auction_workload(opt.users, opt.providers)
                : auction::double_auction_workload(opt.users, opt.providers);
        workloads.push_back(auction::generate(params, rng));
      }
      const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);
      std::printf("# service plane: m=%zu k=%zu, %zu instance(s), pipeline "
                  "depth %zu\n",
                  opt.providers, opt.k, opt.instances, opt.pipeline_depth);
      for (const auto& inst : run.instances) {
        if (inst.outcome.ok()) {
          std::printf("instance %llu (seed %llu): (x, p\xE2\x83\x97) reached, "
                      "settled at %s\n",
                      static_cast<unsigned long long>(inst.id),
                      static_cast<unsigned long long>(inst.derived_seed),
                      sim::format_time(inst.settled_at).c_str());
        } else {
          std::printf("instance %llu (seed %llu): \xE2\x8A\xA5 (%s)\n",
                      static_cast<unsigned long long>(inst.id),
                      static_cast<unsigned long long>(inst.derived_seed),
                      abort_reason_name(inst.outcome.bottom().reason));
        }
      }
      if (run.equivocation_proof) {
        std::printf("transferable equivocation proof against provider p%u on "
                    "topic '%s'\n",
                    run.equivocation_proof->signer,
                    run.equivocation_proof->topic.c_str());
      }
      std::printf("# %zu/%zu instances ok, %s virtual, %.2f auctions/vsec; "
                  "traffic: %llu msgs, %llu bytes\n",
                  run.settled_ok, run.instances.size(),
                  sim::format_time(run.makespan).c_str(),
                  run.auctions_per_vsec(),
                  static_cast<unsigned long long>(run.traffic.messages),
                  static_cast<unsigned long long>(run.traffic.bytes));
      return run.settled_ok == run.instances.size() ? 0 : 2;
    }
    const auto run = runtime::SimRuntime(cfg).run_distributed(*auctioneer, instance);
    outcome = run.global_outcome;
    timing = sim::format_time(run.makespan) + " virtual, " +
             std::to_string(run.traffic.messages) + " msgs, " +
             std::to_string(run.traffic.bytes) + " bytes";
    if (opt.reliability.enable) {
      const auto& rs = run.reliability_stats;
      timing += "; reliability: " + std::to_string(rs.tracked) + " tracked, " +
                std::to_string(rs.retransmits) + " retransmits, " +
                std::to_string(rs.acks_sent) + " acks, " +
                std::to_string(rs.duplicates_suppressed) + " dups suppressed, " +
                std::to_string(rs.give_ups) + " give-ups";
    }
    if (opt.auth.enable) {
      const auto& as = run.auth_stats;
      timing += "; auth: " + std::to_string(as.signed_sends) + " signed (" +
                std::to_string(as.signed_reuses) + " fan-out reuses), " +
                std::to_string(as.verified_eager + as.verified_batched) +
                " verified";
      if (opt.auth.batch_verify) {
        timing += " in " + std::to_string(as.batches) + " batches";
      }
      timing += ", " +
                std::to_string(as.rejected_bad_sig + as.rejected_malformed) +
                " rejected, " + std::to_string(as.replays_dropped) +
                " replays dropped";
    }
    if (run.equivocation_proof) {
      abort_extra = "; transferable equivocation proof against provider p" +
                    std::to_string(run.equivocation_proof->signer) +
                    " on topic '" + run.equivocation_proof->topic + "'";
    }
    if (opt.trace) {
      std::printf("# trace not recorded via CLI runtime API; phase times:\n");
      std::printf("#   bid agreement done: %s; providers done: %s\n",
                  sim::format_time(run.bid_agreement_makespan()).c_str(),
                  sim::format_time(run.provider_makespan()).c_str());
    }
  } else if (opt.runtime == "thread") {
    runtime::ThreadRunConfig cfg;
    cfg.seed = opt.seed;
    const auto run =
        runtime::ThreadRuntime(cfg).run_distributed(*auctioneer, instance);
    outcome = run.global_outcome;
    timing = std::to_string(
                 std::chrono::duration<double, std::milli>(run.wall_time).count()) +
             " ms wall";
  } else if (opt.runtime == "tcp" && !opt.tcp_node.empty()) {
    runtime::TcpNodeConfig cfg;
    cfg.seed = opt.seed;
    cfg.base_port = opt.base_port;
    cfg.wal_dir = opt.wal_dir;
    cfg.crash_after = opt.crash_after;
    if (opt.tcp_node == "client") {
      const auto run = runtime::run_tcp_client(instance, opt.providers, cfg);
      if (!run.result_digest.empty()) {
        std::printf("result sha256 %s\n", run.result_digest.c_str());
      }
      if (!run.ok) {
        std::printf("tcp client: FAILED — %s\n", run.error.c_str());
        return 2;
      }
      std::printf("# tcp client: %zu provider reports agree\n", opt.providers);
      return 0;
    }
    char* end = nullptr;
    const unsigned long j = std::strtoul(opt.tcp_node.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || j >= opt.providers) {
      return fail("--tcp-node must be 'client' or a provider index < " +
                  std::to_string(opt.providers));
    }
    const auto run = runtime::run_tcp_provider(*auctioneer, instance,
                                               static_cast<NodeId>(j), cfg);
    if (!run.error.empty()) return fail(run.error);
    std::string note;
    if (!opt.wal_dir.empty()) {
      const auto& ws = run.wal_stats;
      note = "; wal: " + std::to_string(ws.records_appended) + " records, " +
             std::to_string(ws.commits) + " commits";
      if (run.recovered) {
        const auto& rs = run.reliability_stats;
        note += ", recovered: " + std::to_string(ws.messages_replayed) +
                " replayed, " + std::to_string(ws.snapshots_checked) +
                " checkpoints (" + std::to_string(ws.snapshot_mismatches) +
                " mismatches), " + std::to_string(rs.rejoin_requests_sent) +
                " rejoin requests";
      }
    }
    if (!run.outcome.ok()) {
      std::printf("tcp provider %lu: \xE2\x8A\xA5 (%s)%s%s\n", j,
                  abort_reason_name(run.outcome.bottom().reason),
                  run.timed_out ? ", timed out" : "", note.c_str());
      return 2;
    }
    std::printf("# tcp provider %lu: (x, p\xE2\x83\x97) reached%s\n", j,
                note.c_str());
    return 0;
  } else if (opt.runtime == "tcp") {
    runtime::TcpRunConfig cfg;
    cfg.seed = opt.seed;
    const auto run = runtime::TcpRuntime(cfg).run_distributed(*auctioneer, instance);
    outcome = run.global_outcome;
    timing = std::to_string(
                 std::chrono::duration<double, std::milli>(run.wall_time).count()) +
             " ms wall over TCP ports " + std::to_string(run.base_port) + "..";
  } else {
    return fail("unknown --runtime '" + opt.runtime + "'");
  }

  if (!outcome.ok()) {
    std::printf("outcome: \xE2\x8A\xA5 (%s) — auction aborted, no payments%s\n",
                abort_reason_name(outcome.bottom().reason), abort_extra.c_str());
    return 2;
  }
  std::printf("# distributed auctioneer: m=%zu k=%zu, %s\n", opt.providers, opt.k,
              timing.c_str());
  if (opt.csv_output) {
    std::fputs(serde::result_to_csv(instance, outcome.value()).c_str(), stdout);
  } else {
    print_report(instance, outcome.value());
  }
  return 0;
}
