#!/usr/bin/env bash
# Kill-restart smoke: the real multi-process durability story, end to end.
#
# Three provider processes + one client over loopback TCP, each journaling to
# its own WAL. Phase 1 records the clean-run result digest. Phase 2 starts
# provider 1 with --crash-after so it _exit(137)s mid-epoch, restarts it
# against the same WAL, and requires the client to finish with the *same*
# digest — a killed-and-restarted provider must be observationally absent.
# Phase 3 checks the foreign-state gate: pointing a different run seed at an
# existing WAL must be refused before the process binds anything.
#
# Usage: kill_restart_smoke.sh <path-to-dauct_cli> [base_port]
set -u

CLI=${1:?usage: kill_restart_smoke.sh <path-to-dauct_cli> [base_port]}
BASE_PORT=${2:-19700}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS="--runtime tcp --users 8 --providers 3 --k 1 --seed 7 --base-port $BASE_PORT"
fail() { echo "FAIL: $*" >&2; exit 1; }

digest_of() { grep -o 'result sha256 [0-9a-f]*' "$1" | awk '{print $3}'; }

# --- phase 1: clean run ----------------------------------------------------
mkdir -p "$WORK/clean"
for j in 0 1 2; do
  "$CLI" $ARGS --tcp-node "$j" --wal-dir "$WORK/clean" \
    > "$WORK/clean-p$j.log" 2>&1 &
done
sleep 0.3
"$CLI" $ARGS --tcp-node client > "$WORK/clean-client.log" 2>&1 \
  || fail "clean client run failed: $(cat "$WORK/clean-client.log")"
wait
CLEAN_DIGEST=$(digest_of "$WORK/clean-client.log")
[ -n "$CLEAN_DIGEST" ] || fail "clean run produced no digest"
echo "clean digest: $CLEAN_DIGEST"

# --- phase 2: kill provider 1 mid-epoch, restart it ------------------------
mkdir -p "$WORK/kill"
"$CLI" $ARGS --tcp-node 0 --wal-dir "$WORK/kill" > "$WORK/kill-p0.log" 2>&1 &
"$CLI" $ARGS --tcp-node 1 --wal-dir "$WORK/kill" --crash-after 3 \
  > "$WORK/kill-p1.log" 2>&1 &
VICTIM=$!
"$CLI" $ARGS --tcp-node 2 --wal-dir "$WORK/kill" > "$WORK/kill-p2.log" 2>&1 &
sleep 0.3
"$CLI" $ARGS --tcp-node client > "$WORK/kill-client.log" 2>&1 &
CLIENT=$!

wait "$VICTIM"; VEXIT=$?
[ "$VEXIT" -eq 137 ] || fail "victim exited $VEXIT, expected 137 (the kill)"
"$CLI" $ARGS --tcp-node 1 --wal-dir "$WORK/kill" > "$WORK/kill-p1b.log" 2>&1 \
  || fail "restarted provider failed: $(cat "$WORK/kill-p1b.log")"
grep -q "recovered" "$WORK/kill-p1b.log" \
  || fail "restarted provider did not report a recovery"

wait "$CLIENT" || fail "kill-restart client failed: $(cat "$WORK/kill-client.log")"
wait
KILL_DIGEST=$(digest_of "$WORK/kill-client.log")
echo "kill-restart digest: $KILL_DIGEST"
[ "$KILL_DIGEST" = "$CLEAN_DIGEST" ] \
  || fail "digests diverge: clean=$CLEAN_DIGEST kill-restart=$KILL_DIGEST"

# --- phase 3: a foreign WAL is refused, fast -------------------------------
"$CLI" --runtime tcp --users 8 --providers 3 --k 1 --seed 8 \
  --base-port "$BASE_PORT" --tcp-node 1 --wal-dir "$WORK/kill" \
  > "$WORK/foreign.log" 2>&1
[ $? -eq 1 ] || fail "foreign-seed recovery was not refused"
grep -q "wal recovery refused" "$WORK/foreign.log" \
  || fail "refusal missing its diagnostic: $(cat "$WORK/foreign.log")"

echo "PASS: kill-restart rejoin matches the clean run, foreign WAL refused"
