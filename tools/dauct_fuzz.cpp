// dauct_fuzz — adversarial fault-plan fuzzer for the distributed auctioneer.
//
// Samples random fault plans (plus reliability/auth/deviation knobs) within
// declared bounds, runs each through the deterministic scenario runtime next
// to its fault-free twin, and checks the paper's safety claim: the run
// matches the clean outcome or aborts with an explicit ⊥ — never a silently
// different result, never a runaway event stream. Violations are minimized
// with delta debugging and written as committable, self-checking .scn repros.
//
// Examples:
//   dauct_fuzz --plans 1000 --seed 7
//   dauct_fuzz --plans 200 --seed 1 --minimize --out repros
//   dauct_fuzz --plans 1 --seed 7 --index 41      # replay one reported case
//
// Exit codes mirror dauct_cli --scenario: 0 all plans pass, 1 usage or file
// error, 3 at least one violation. Full workflow: docs/FUZZING.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/fuzz_harness.hpp"
#include "sim/fuzz.hpp"

namespace {

using namespace dauct;

struct Options {
  std::uint64_t plans = 100;
  std::uint64_t seed = 1;
  std::uint64_t index = 0;      // first stream index to run
  std::string bounds_file;
  std::string out_dir;          // empty: don't write repro files
  std::string near_miss_log;    // empty: don't write the per-shard log
  std::uint64_t near_miss_probes = 2;  // follow-up plans per near-miss
  bool minimize = false;
  bool help = false;
};

void print_usage() {
  std::printf(R"(usage: dauct_fuzz [options]

fuzzing:
  --plans N         number of fault plans to generate and check (default 100)
  --seed S          fuzzer stream seed; same seed => same plans (default 1)
  --index I         start at stream index I instead of 0 (replay a reported
                    case with --index I --plans 1)
  --bounds FILE     sampling bounds, INI-style ([shape] [faults] [knobs];
                    key reference in docs/FUZZING.md); default bounds if omitted

on violation:
  --minimize        delta-debug each violating plan to a local minimum that
                    still fails with the same verdict before reporting it
  --out DIR         write each violation as a self-checking .scn repro into
                    DIR (pinned [expect]; replay with dauct_cli --scenario)

near-miss guidance:
  --near-miss-log FILE    append one line per near-miss (a passing plan that
                          came within 10%% of its event budget, or whose
                          reliability layer gave a chain up) — the per-shard
                          log CI uploads; format in docs/FUZZING.md
  --near-miss-probes N    follow-up plans sampled per near-miss from a seed
                          derived from the near-miss case (deterministic and
                          replayable: each probe prints its own --seed).
                          0 disables probing (default 2)

  --help            this text

exit codes: 0 all plans pass, 1 usage/file error, 3 at least one violation.
)");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--minimize") {
      opt.minimize = true;
    } else if (arg == "--plans") {
      if (!(v = need_value(i))) return false;
      opt.plans = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      if (!(v = need_value(i))) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--index") {
      if (!(v = need_value(i))) return false;
      opt.index = std::strtoull(v, nullptr, 10);
    } else if (arg == "--bounds") {
      if (!(v = need_value(i))) return false;
      opt.bounds_file = v;
    } else if (arg == "--out") {
      if (!(v = need_value(i))) return false;
      opt.out_dir = v;
    } else if (arg == "--near-miss-log") {
      if (!(v = need_value(i))) return false;
      opt.near_miss_log = v;
    } else if (arg == "--near-miss-probes") {
      if (!(v = need_value(i))) return false;
      opt.near_miss_probes = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "dauct_fuzz: %s\n", message.c_str());
  return 1;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// Pin the scenario's observed behavior and write it as DIR/NAME.scn.
/// Returns the path ("" on write failure, reported by the caller).
std::string emit_repro(const Options& opt, runtime::Scenario sc,
                       const std::string& name) {
  const runtime::FuzzReport fresh = runtime::run_oracle(sc);
  runtime::pin_expectations(sc, fresh);
  sc.name = name;
  const std::string path = opt.out_dir + "/" + name + ".scn";
  if (!write_file(path, sc.to_scn())) return std::string();
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 1;
  if (opt.help) {
    print_usage();
    return 0;
  }

  sim::FuzzBounds bounds;
  if (!opt.bounds_file.empty()) {
    std::ifstream in(opt.bounds_file, std::ios::binary);
    if (!in) return fail("cannot read " + opt.bounds_file);
    std::ostringstream ss;
    ss << in.rdbuf();
    const sim::FuzzBoundsParse parsed = sim::parse_fuzz_bounds(ss.str());
    if (!parsed.ok()) return fail(opt.bounds_file + ": " + parsed.error);
    bounds = *parsed.bounds;
  }

  const sim::PlanFuzzer fuzzer(bounds, opt.seed);
  std::printf("# dauct_fuzz: %llu plan(s), stream seed %llu, from index %llu%s\n",
              static_cast<unsigned long long>(opt.plans),
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(opt.index),
              opt.bounds_file.empty() ? " (default bounds)" : "");

  std::uint64_t violations = 0;
  std::uint64_t near_misses = 0;
  std::uint64_t probes_run = 0;
  std::ofstream nm_log;
  if (!opt.near_miss_log.empty()) {
    nm_log.open(opt.near_miss_log, std::ios::binary | std::ios::app);
    if (!nm_log) return fail("cannot write " + opt.near_miss_log);
  }

  // Report one violating case: replay line, optional repro, optional ddmin.
  // Shared by primary plans and near-miss probes — `stream_seed` names
  // whichever stream the case came from, so the replay line always works.
  // Returns false on a file-write failure (fatal).
  const auto report_violation = [&](const sim::FuzzCase& c,
                                    std::uint64_t stream_seed,
                                    std::uint64_t index,
                                    const runtime::Scenario& sc,
                                    const runtime::FuzzReport& report) {
    ++violations;
    std::printf("VIOLATION at index %llu (case seed %llu): %s — %s\n",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(c.case_seed),
                runtime::fuzz_verdict_name(report.verdict),
                report.detail.c_str());
    std::printf("  replay: dauct_fuzz --seed %llu --index %llu --plans 1%s%s\n",
                static_cast<unsigned long long>(stream_seed),
                static_cast<unsigned long long>(index),
                opt.bounds_file.empty() ? "" : " --bounds ",
                opt.bounds_file.c_str());

    const std::string base =
        "fuzz-" + std::to_string(c.case_seed) + "-" + std::to_string(index);
    if (!opt.out_dir.empty()) {
      const std::string path = emit_repro(opt, sc, base);
      if (path.empty()) return false;
      std::printf("  repro: dauct_cli --scenario %s\n", path.c_str());
    }
    if (opt.minimize) {
      const runtime::MinimizeResult min =
          runtime::minimize(sc, report.verdict, runtime::default_oracle);
      std::printf("  minimized: %zu clause(s) removed in %zu probe(s); "
                  "%zu link rule(s), %zu cut(s), %zu partition(s), "
                  "%zu crash(es), %zu deviation(s), %zu bidder(s) remain\n",
                  min.removed, min.probes, min.scenario.faults.links.size(),
                  min.scenario.faults.cuts.size(),
                  min.scenario.faults.partitions.size(),
                  min.scenario.faults.crashes.size(),
                  min.scenario.deviations.size(), min.scenario.bidders.size());
      if (!opt.out_dir.empty()) {
        const std::string path = emit_repro(opt, min.scenario, base + "-min");
        if (path.empty()) return false;
        std::printf("  minimized repro: dauct_cli --scenario %s\n", path.c_str());
      }
    }
    return true;
  };

  // A near-miss is a PASSING plan that ended within 10% of its event budget,
  // or whose reliability layer gave a retransmit chain up — the bounds
  // regions where the next violation usually lives. Each one is logged, and
  // the sampler is biased toward the region by running follow-up plans from
  // a stream seed derived from the near-miss case (pure function of the
  // case, so the bias is reproducible shard-by-shard).
  const auto near_miss_kind =
      [](const runtime::Scenario& sc,
         const runtime::FuzzReport& report) -> const char* {
    const auto& run = report.run.run;
    if (!run.event_budget_exhausted &&
        run.events_dispatched * 10 >= sc.max_events * 9) {
      return "event-budget";
    }
    if (run.reliability_stats.give_ups > 0) return "give-up";
    return nullptr;
  };

  for (std::uint64_t i = 0; i < opt.plans; ++i) {
    const std::uint64_t index = opt.index + i;
    const sim::FuzzCase c = fuzzer.nth(index);
    for (const std::string& d : c.degradations) {
      std::printf("# degraded: index %llu: %s\n",
                  static_cast<unsigned long long>(index), d.c_str());
    }
    const runtime::Scenario sc = runtime::scenario_from_case(c);
    const runtime::FuzzReport report = runtime::run_oracle(sc);
    if (runtime::fuzz_violation(report.verdict)) {
      if (!report_violation(c, opt.seed, index, sc, report)) {
        return fail("cannot write repro under " + opt.out_dir);
      }
      continue;
    }

    const char* kind = near_miss_kind(sc, report);
    if (!kind) continue;
    ++near_misses;
    const std::uint64_t probe_seed =
        c.case_seed * 0x9e3779b97f4a7c15ULL + 0x6ea5;
    std::printf("# near-miss at index %llu: %s (events %llu/%llu, give-ups "
                "%llu) -> probe seed %llu\n",
                static_cast<unsigned long long>(index), kind,
                static_cast<unsigned long long>(report.run.run.events_dispatched),
                static_cast<unsigned long long>(sc.max_events),
                static_cast<unsigned long long>(
                    report.run.run.reliability_stats.give_ups),
                static_cast<unsigned long long>(probe_seed));
    if (nm_log.is_open()) {
      nm_log << "near-miss seed=" << opt.seed << " index=" << index
             << " kind=" << kind
             << " events=" << report.run.run.events_dispatched << "/"
             << sc.max_events
             << " give_ups=" << report.run.run.reliability_stats.give_ups
             << " probe_seed=" << probe_seed
             << " probes=" << opt.near_miss_probes << "\n";
      nm_log.flush();
    }
    // Focused follow-up: a short derived stream next to the near-miss.
    // Every probe is a first-class case — same oracle, same repro path —
    // and its replay line uses the derived seed, so CI output is actionable.
    const sim::PlanFuzzer probe_fuzzer(bounds, probe_seed);
    for (std::uint64_t p = 0; p < opt.near_miss_probes; ++p) {
      ++probes_run;
      const sim::FuzzCase pc = probe_fuzzer.nth(p);
      const runtime::Scenario psc = runtime::scenario_from_case(pc);
      const runtime::FuzzReport preport = runtime::run_oracle(psc);
      if (runtime::fuzz_violation(preport.verdict) &&
          !report_violation(pc, probe_seed, p, psc, preport)) {
        return fail("cannot write repro under " + opt.out_dir);
      }
    }
  }

  std::printf("# %llu plan(s) checked (+%llu near-miss probe(s), %llu "
              "near-miss(es)), %llu violation(s)\n",
              static_cast<unsigned long long>(opt.plans),
              static_cast<unsigned long long>(probes_run),
              static_cast<unsigned long long>(near_misses),
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 3;
}
